//! The multi-tenant search gateway: many concurrent search *jobs*
//! multiplexed onto one shared engine (and, optionally, one shared
//! worker fleet).
//!
//! A [`GatewayService`] wraps a [`BatchEvalService`] and adds the
//! protocol-4 `job_*` command family (advertised by the `"jobs"`
//! capability):
//!
//! | command      | answers                                                  |
//! |--------------|----------------------------------------------------------|
//! | `job_submit` | admits one accel or joint search job; `{job_id, status}` |
//! | `job_status` | lifecycle snapshot of one job                            |
//! | `job_events` | the job's per-generation progress events, cursor-paged   |
//! | `job_cancel` | requests cancellation at the next generation boundary    |
//! | `job_result` | the finished job's result object                         |
//!
//! Every other command falls through to the wrapped service unchanged,
//! so a gateway is a strict superset of a worker.
//!
//! # Execution model
//!
//! A job is a checkpointed search state ([`AccelSearchState`] /
//! [`JointSearchState`]) advanced **one generation at a time** by a
//! small pool of executor threads. Between generations the state is
//! parked back in the registry (`checkpointed`), so N resident jobs
//! interleave at generation granularity on however many executors the
//! gateway runs — the same step-loop the CLI and the distributed
//! coordinator already use, now time-sliced.
//!
//! Scheduling is weighted-fair with per-tenant admission control:
//!
//! * a tenant never has more than `tenant_quota` generations in flight
//!   at once, regardless of how many jobs it queues;
//! * among runnable jobs, the next generation goes to the job with the
//!   smallest `issued / weight` ratio (exact integer cross-product
//!   comparison, lowest job id on ties), so a weight-2 job advances
//!   twice as often as a weight-1 job under contention;
//! * admission is bounded: once `max_jobs` non-terminal jobs are
//!   resident, `job_submit` answers an explicit
//!   `rejected:over_capacity` error instead of queueing unboundedly.
//!
//! # Correctness
//!
//! Every search step is a pure function of the search state (content-
//! addressed cache, content-derived seeds — the engine's core
//! invariant), so a job's trajectory is independent of *when* its
//! generations run relative to other jobs'. The gateway test suite
//! (`tests/tests/gateway.rs`) enforces the strong form: a job's result
//! object is **byte-identical** to running the same submission alone,
//! at any interleaving, local or over a shared fleet.

use crate::accel_search::{
    accel_search_init, accel_search_step, AccelSearchConfig, AccelSearchState,
};
use crate::distributed::SharedCoordinator;
use crate::joint::{joint_search_init, joint_search_step, JointConfig, JointSearchState};
use crate::service::{BatchEvalService, WireService};
use naas_cost::CostModel;
use naas_engine::service::{error_line, ok_line, ParseFailure, Request};
use naas_engine::telemetry::metrics;
use naas_engine::{scenario, CheckpointError, EvalJob};
use naas_nas::AccuracyModel;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Capability string a gateway appends to the base
/// [`crate::service::CAPABILITIES`] list: this process answers the
/// `job_*` command family.
pub const GATEWAY_CAPABILITY: &str = "jobs";

/// Configuration of a [`GatewayService`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Admission bound: the maximum number of *non-terminal* jobs
    /// (queued, running or checkpointed) resident at once. A submit
    /// beyond this answers `rejected:over_capacity`. `0` means the
    /// default.
    pub max_jobs: usize,
    /// Per-tenant quota: the maximum number of this tenant's
    /// generations in flight simultaneously. `0` means the default.
    pub tenant_quota: usize,
    /// Executor threads stepping job generations. `0` means the
    /// default. Each executor drives one generation end-to-end (the
    /// generation itself fans out over the engine's worker pool or the
    /// shared fleet), so this bounds cross-job concurrency, not
    /// intra-generation parallelism.
    pub executors: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_jobs: 32,
            tenant_quota: 2,
            executors: 2,
        }
    }
}

impl GatewayConfig {
    fn normalized(mut self) -> Self {
        let d = GatewayConfig::default();
        if self.max_jobs == 0 {
            self.max_jobs = d.max_jobs;
        }
        if self.tenant_quota == 0 {
            self.tenant_quota = d.tenant_quota;
        }
        if self.executors == 0 {
            self.executors = d.executors;
        }
        self
    }
}

/// Lifecycle of one gateway job. Transitions:
/// `Queued → Running ⇄ Checkpointed → Done | Cancelled | Failed`
/// (`Queued → Cancelled` when cancelled before the first generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, no generation run yet.
    Queued,
    /// An executor is stepping one of its generations right now.
    Running,
    /// Between generations; state parked in the registry, runnable.
    Checkpointed,
    /// All generations run; result available via `job_result`.
    Done,
    /// Cancelled at a generation boundary (or straight from the queue).
    Cancelled,
    /// The search ended without a valid result, or a step panicked.
    Failed,
}

impl JobStatus {
    /// The wire spelling (lowercase, stable — see docs/PROTOCOL.md).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Checkpointed => "checkpointed",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// `true` once the job can never run another generation.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The parked search state of a job between generations.
enum JobState {
    Accel(AccelSearchState),
    Joint(JointSearchState),
}

impl JobState {
    fn is_done(&self) -> bool {
        match self {
            JobState::Accel(s) => s.is_done(),
            JobState::Joint(s) => s.is_done(),
        }
    }
}

/// One registered job.
struct Job {
    tenant: String,
    /// Weighted-fair share; a weight-2 job advances twice as often as a
    /// weight-1 job under contention.
    weight: u64,
    status: JobStatus,
    /// The submitted `scenario` parameter, verbatim — shipped per step
    /// when the gateway runs over a shared fleet.
    scenario_value: Value,
    /// The scenario's benchmark suite (accel jobs step against it).
    networks: Arc<Vec<naas_ir::Network>>,
    /// Parked between generations; taken (`None`) while an executor
    /// steps it.
    state: Option<JobState>,
    /// Generations issued to this job so far (the weighted-fair
    /// numerator).
    issued: u64,
    /// Completed generations (mirrors the state's iteration counter,
    /// readable while the state is out being stepped).
    generation: u64,
    /// Per-generation progress events, appended in order; `job_events`
    /// pages through them by cursor.
    events: Vec<Value>,
    /// The finished job's result object (`Done` only).
    result: Option<Value>,
    /// Why the job failed (`Failed` only).
    error: Option<String>,
    /// Set by `job_cancel`; honoured at the next generation boundary.
    cancel_requested: bool,
}

struct SchedState {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    shutdown: bool,
}

/// Everything the executor threads share. Split out of
/// [`GatewayService`] so executors hold an `Arc` of this core without
/// keeping the service itself (and its join handles) alive.
struct GatewayCore {
    inner: Arc<BatchEvalService>,
    fleet: Option<SharedCoordinator>,
    /// The gateway steps jobs with its own cost model; [`CostModel`] is
    /// deterministic by construction, so this is the same oracle the
    /// wrapped service evaluates with.
    model: CostModel,
    accuracy: AccuracyModel,
    config: GatewayConfig,
    sched: Mutex<SchedState>,
    /// Woken on every submit, step completion, cancel and shutdown.
    wake: Condvar,
}

/// A job-multiplexing service: the `job_*` commands plus everything the
/// wrapped [`BatchEvalService`] answers. Serve it exactly like the base
/// service — `ServiceServer::start(Arc::new(gateway))` — the stream,
/// batcher and listener plumbing is shared via [`WireService`].
pub struct GatewayService {
    core: Arc<GatewayCore>,
    executors: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl GatewayService {
    /// Starts a gateway over `inner`, spawning its executor threads.
    /// With a `fleet`, accel and joint generations fan out over the
    /// shared coordinator; without one they run on the local engine.
    pub fn start(
        inner: Arc<BatchEvalService>,
        fleet: Option<SharedCoordinator>,
        config: GatewayConfig,
    ) -> Self {
        let config = config.normalized();
        let core = Arc::new(GatewayCore {
            inner,
            fleet,
            model: CostModel::new(),
            accuracy: AccuracyModel::default(),
            config: config.clone(),
            sched: Mutex::new(SchedState {
                jobs: BTreeMap::new(),
                next_id: 1,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let executors = (0..config.executors)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("gateway-executor-{i}"))
                    .spawn(move || core.executor_loop())
                    .expect("spawning a gateway executor thread")
            })
            .collect();
        GatewayService {
            core,
            executors: Mutex::new(executors),
        }
    }

    /// The wrapped base service.
    pub fn inner(&self) -> &BatchEvalService {
        &self.core.inner
    }

    /// Answers one raw request line — the gateway counterpart of
    /// [`BatchEvalService::respond`].
    pub fn respond(&self, line: &str) -> String {
        WireService::answer(self, &Request::parse(line))
    }

    /// Blocks until no job is queued, running or checkpointed (all
    /// resident jobs terminal). Test and shutdown helper.
    pub fn wait_idle(&self) {
        let mut sched = self.core.lock();
        while sched.jobs.values().any(|job| !job.status.is_terminal()) {
            let (next, _) = self
                .core
                .wake
                .wait_timeout(sched, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            sched = next;
        }
    }

    /// Stops the executor threads. Jobs mid-generation finish that
    /// generation and are parked `checkpointed`; nothing further runs.
    fn stop_executors(&self) {
        {
            let mut sched = self.core.lock();
            sched.shutdown = true;
        }
        self.core.wake.notify_all();
        let handles =
            std::mem::take(&mut *self.executors.lock().unwrap_or_else(|p| p.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for GatewayService {
    fn drop(&mut self) {
        self.stop_executors();
    }
}

impl WireService for GatewayService {
    fn answer(&self, parsed: &Result<Request, ParseFailure>) -> String {
        let request = match parsed {
            Ok(request) => request,
            Err(failure) => return error_line(&failure.id, &failure.message),
        };
        if !is_job_command(&request.cmd) && request.cmd != "hello" {
            return self.core.inner.answer(parsed);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.core.handle(request)));
        match outcome {
            Ok(Ok(result)) => ok_line(&request.id, result),
            Ok(Err(message)) => error_line(&request.id, &message),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                error_line(&request.id, &format!("internal panic: {message}"))
            }
        }
    }

    fn threads(&self) -> usize {
        self.core.inner.threads()
    }

    fn persist_cache(&self) -> Result<(), CheckpointError> {
        self.core.inner.persist_cache()
    }
}

fn is_job_command(cmd: &str) -> bool {
    matches!(
        cmd,
        "job_submit" | "job_status" | "job_events" | "job_cancel" | "job_result"
    )
}

impl GatewayCore {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Dispatches the gateway-owned commands. Errors are complete wire
    /// messages (no prefix added by the caller), so admission rejections
    /// reach the client verbatim as `rejected:over_capacity: ...`.
    fn handle(&self, request: &Request) -> Result<Value, String> {
        match request.cmd.as_str() {
            "hello" => self.hello(request),
            "job_submit" => self.job_submit(request),
            "job_status" => self.job_status(request),
            "job_events" => self.job_events(request),
            "job_cancel" => self.job_cancel(request),
            "job_result" => self.job_result(request),
            other => unreachable!("non-gateway command `{other}` routed to gateway handler"),
        }
    }

    /// The base `hello` with the gateway's additions: the `"jobs"`
    /// capability and a gateway server banner. Protocol-mismatch
    /// checking is the wrapped service's, unchanged.
    fn hello(&self, request: &Request) -> Result<Value, String> {
        let mut reply = self.inner.handle(request).map_err(|e| e.to_string())?;
        if let Value::Object(fields) = &mut reply {
            for (key, value) in fields.iter_mut() {
                match key.as_str() {
                    "capabilities" => {
                        if let Value::Array(caps) = value {
                            caps.push(Value::Str(GATEWAY_CAPABILITY.to_string()));
                        }
                    }
                    "server" => {
                        *value = Value::Str(format!(
                            "naas-search gateway ({} executors, max {} jobs, quota {}/tenant)",
                            self.config.executors, self.config.max_jobs, self.config.tenant_quota
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(reply)
    }

    /// `job_submit`: admission control, then job construction.
    ///
    /// Parameters: `scenario` (name or object, required — supplies the
    /// benchmark suite and the resource envelope), `kind` (`"accel"`,
    /// the default, or `"joint"`), `tenant` (string, default
    /// `"default"`), `weight` (u64 ≥ 1, default 1), `seed` (u64,
    /// default 0), and either `preset` (`"quick"` default / `"paper"`)
    /// or a full `config` object overriding it.
    fn job_submit(&self, request: &Request) -> Result<Value, String> {
        // Reject before doing any resolution work: admission is the
        // cheap path and must stay cheap under overload.
        {
            let sched = self.lock();
            let resident = sched
                .jobs
                .values()
                .filter(|job| !job.status.is_terminal())
                .count();
            if resident >= self.config.max_jobs {
                metrics().gateway.jobs_rejected.inc();
                return Err(format!(
                    "rejected:over_capacity: {resident} jobs resident (max {})",
                    self.config.max_jobs
                ));
            }
        }
        let tenant = match request.param("tenant") {
            None => "default".to_string(),
            Some(Value::Str(name)) => name.clone(),
            Some(_) => return Err("bad request: `tenant` must be a string".into()),
        };
        let weight = match request.param("weight") {
            None => 1,
            Some(value) => match value.as_u64() {
                Some(w) if w >= 1 => w,
                _ => return Err("bad request: `weight` must be a u64 >= 1".into()),
            },
        };
        let seed = match request.param("seed") {
            None => 0,
            Some(value) => value
                .as_u64()
                .ok_or_else(|| "bad request: `seed` must be a u64".to_string())?,
        };
        let kind = match request.param("kind") {
            None => "accel".to_string(),
            Some(Value::Str(kind)) => kind.clone(),
            Some(_) => return Err("bad request: `kind` must be a string".into()),
        };
        let (scenario_value, eval_job) = self.resolve_scenario(request)?;
        let state = match kind.as_str() {
            "accel" => {
                let cfg: AccelSearchConfig = match request.param("config") {
                    Some(value) => serde_json::from_value(value)
                        .map_err(|e| format!("bad request: invalid accel config: {e}"))?,
                    None => match request.param("preset").and_then(Value::as_str) {
                        None | Some("quick") => AccelSearchConfig::quick(seed),
                        Some("paper") => AccelSearchConfig::paper(seed),
                        Some(other) => {
                            return Err(format!(
                                "bad request: unknown preset `{other}` (quick, paper)"
                            ))
                        }
                    },
                };
                if eval_job.networks.is_empty() {
                    return Err("bad request: scenario has no benchmark networks".into());
                }
                let seeds: Vec<_> = if eval_job.scenario.warm_start {
                    vec![eval_job.baseline.clone()]
                } else {
                    Vec::new()
                };
                JobState::Accel(accel_search_init(&eval_job.constraint, &cfg, &seeds))
            }
            "joint" => {
                let cfg: JointConfig = match request.param("config") {
                    Some(value) => serde_json::from_value(value)
                        .map_err(|e| format!("bad request: invalid joint config: {e}"))?,
                    None => match request.param("preset").and_then(Value::as_str) {
                        None | Some("quick") => JointConfig::quick(seed),
                        Some(other) => {
                            return Err(format!(
                                "bad request: unknown joint preset `{other}` (quick)"
                            ))
                        }
                    },
                };
                JobState::Joint(joint_search_init(&eval_job.constraint, &cfg))
            }
            other => {
                return Err(format!(
                    "bad request: unknown job kind `{other}` (accel, joint)"
                ))
            }
        };
        let job = Job {
            tenant: tenant.clone(),
            weight,
            status: JobStatus::Queued,
            scenario_value,
            networks: Arc::new(eval_job.networks.clone()),
            state: Some(state),
            issued: 0,
            generation: 0,
            events: Vec::new(),
            result: None,
            error: None,
            cancel_requested: false,
        };
        let job_id = {
            let mut sched = self.lock();
            // Re-check under the same lock that assigns the id: two
            // racing submits must not both pass the earlier soft check.
            let resident = sched
                .jobs
                .values()
                .filter(|job| !job.status.is_terminal())
                .count();
            if resident >= self.config.max_jobs {
                metrics().gateway.jobs_rejected.inc();
                return Err(format!(
                    "rejected:over_capacity: {resident} jobs resident (max {})",
                    self.config.max_jobs
                ));
            }
            let job_id = sched.next_id;
            sched.next_id += 1;
            sched.jobs.insert(job_id, job);
            metrics().gateway.jobs_submitted.inc();
            update_gauges(&sched);
            job_id
        };
        self.wake.notify_all();
        naas_engine::telemetry::events().emit(
            naas_engine::telemetry::Level::Info,
            "gateway.job_submitted",
            "job admitted",
            &[
                ("job_id", Value::U64(job_id)),
                ("tenant", Value::Str(tenant.clone())),
                ("kind", Value::Str(kind.clone())),
            ],
        );
        Ok(Value::Object(vec![
            ("job_id".to_string(), Value::U64(job_id)),
            (
                "status".to_string(),
                Value::Str(JobStatus::Queued.as_str().to_string()),
            ),
        ]))
    }

    /// The gateway's own scenario resolution (the wrapped service's is
    /// private and memoized per-request; a job resolves once at
    /// admission). Returns the verbatim parameter too — it travels with
    /// every fleet step so remote workers resolve the same scenario.
    fn resolve_scenario(&self, request: &Request) -> Result<(Value, EvalJob), String> {
        let value = request
            .param("scenario")
            .ok_or_else(|| {
                "bad request: `scenario` (name or scenario object) is required".to_string()
            })?
            .clone();
        let scenario = match &value {
            Value::Str(name) => {
                scenario::find(name).ok_or_else(|| format!("not found: scenario `{name}`"))?
            }
            Value::Object(_) => serde_json::from_value::<naas_engine::Scenario>(&value)
                .map_err(|e| format!("bad request: invalid scenario object: {e}"))?,
            _ => return Err("bad request: `scenario` must be a name or an object".into()),
        };
        let eval_job = scenario
            .resolve()
            .map_err(|e| format!("evaluation failed: {e}"))?;
        Ok((value, eval_job))
    }

    fn job_id_param(&self, request: &Request) -> Result<u64, String> {
        request
            .param("job_id")
            .and_then(Value::as_u64)
            .ok_or_else(|| "bad request: `job_id` (u64) is required".to_string())
    }

    /// `job_status`: one lifecycle snapshot.
    fn job_status(&self, request: &Request) -> Result<Value, String> {
        let job_id = self.job_id_param(request)?;
        let sched = self.lock();
        let job = sched
            .jobs
            .get(&job_id)
            .ok_or_else(|| format!("not found: job {job_id}"))?;
        let mut fields = vec![
            ("job_id".to_string(), Value::U64(job_id)),
            (
                "status".to_string(),
                Value::Str(job.status.as_str().to_string()),
            ),
            ("tenant".to_string(), Value::Str(job.tenant.clone())),
            ("weight".to_string(), Value::U64(job.weight)),
            ("generation".to_string(), Value::U64(job.generation)),
            ("events".to_string(), Value::U64(job.events.len() as u64)),
        ];
        if let Some(error) = &job.error {
            fields.push(("error".to_string(), Value::Str(error.clone())));
        }
        Ok(Value::Object(fields))
    }

    /// `job_events`: the per-generation progress stream, paged by a
    /// `since` cursor (default 0). The reply's `next` is the cursor to
    /// pass on the next poll; `done` mirrors terminal status so a
    /// streaming client knows when to stop polling.
    fn job_events(&self, request: &Request) -> Result<Value, String> {
        let job_id = self.job_id_param(request)?;
        let since = match request.param("since") {
            None => 0,
            Some(value) => value
                .as_u64()
                .ok_or_else(|| "bad request: `since` must be a u64".to_string())?
                as usize,
        };
        let sched = self.lock();
        let job = sched
            .jobs
            .get(&job_id)
            .ok_or_else(|| format!("not found: job {job_id}"))?;
        let events: Vec<Value> = job.events.iter().skip(since).cloned().collect();
        Ok(Value::Object(vec![
            ("job_id".to_string(), Value::U64(job_id)),
            ("events".to_string(), Value::Array(events)),
            ("next".to_string(), Value::U64(job.events.len() as u64)),
            ("done".to_string(), Value::Bool(job.status.is_terminal())),
        ]))
    }

    /// `job_cancel`: queued jobs cancel immediately; running or
    /// checkpointed jobs cancel at the next generation boundary.
    /// Cancelling a terminal job is a no-op answering the final status.
    fn job_cancel(&self, request: &Request) -> Result<Value, String> {
        let job_id = self.job_id_param(request)?;
        let status = {
            let mut sched = self.lock();
            let job = sched
                .jobs
                .get_mut(&job_id)
                .ok_or_else(|| format!("not found: job {job_id}"))?;
            job.cancel_requested = true;
            if job.status == JobStatus::Queued {
                job.status = JobStatus::Cancelled;
                job.state = None;
                job.events
                    .push(lifecycle_event(job.generation, "cancelled"));
                metrics().gateway.jobs_cancelled.inc();
            }
            let status = job.status;
            update_gauges(&sched);
            status
        };
        self.wake.notify_all();
        Ok(Value::Object(vec![
            ("job_id".to_string(), Value::U64(job_id)),
            (
                "status".to_string(),
                Value::Str(status.as_str().to_string()),
            ),
        ]))
    }

    /// `job_result`: the finished job's result object — the byte-
    /// identity artifact the test suite compares against solo runs.
    fn job_result(&self, request: &Request) -> Result<Value, String> {
        let job_id = self.job_id_param(request)?;
        let sched = self.lock();
        let job = sched
            .jobs
            .get(&job_id)
            .ok_or_else(|| format!("not found: job {job_id}"))?;
        match job.status {
            JobStatus::Done => Ok(job.result.clone().expect("a done job always has a result")),
            JobStatus::Failed => Err(format!(
                "evaluation failed: job {job_id}: {}",
                job.error.as_deref().unwrap_or("unknown failure")
            )),
            JobStatus::Cancelled => Err(format!("job {job_id} was cancelled")),
            status => Err(format!("job {job_id} not finished (status: {status})")),
        }
    }

    /// One executor thread: pick the weighted-fair next runnable job,
    /// step it one generation outside the lock, park it back. The wait
    /// is timeout-bounded purely as a liveness belt: every state change
    /// notifies the condvar.
    fn executor_loop(&self) {
        loop {
            let claimed = {
                let mut sched = self.lock();
                loop {
                    if sched.shutdown {
                        return;
                    }
                    if let Some(job_id) = self.pick_runnable(&sched) {
                        let job = sched.jobs.get_mut(&job_id).expect("picked job exists");
                        job.status = JobStatus::Running;
                        job.issued += 1;
                        let state = job.state.take().expect("runnable job has parked state");
                        let ctx = StepContext {
                            job_id,
                            tenant: job.tenant.clone(),
                            scenario_value: job.scenario_value.clone(),
                            networks: Arc::clone(&job.networks),
                        };
                        update_gauges(&sched);
                        break Some((ctx, state));
                    }
                    let (next, _) = self
                        .wake
                        .wait_timeout(sched, Duration::from_millis(50))
                        .unwrap_or_else(|p| p.into_inner());
                    sched = next;
                }
            };
            let Some((ctx, mut state)) = claimed else {
                return;
            };
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                (self.step_one(&ctx, &mut state), state)
            }));
            self.park(ctx, stepped);
            self.wake.notify_all();
        }
    }

    /// Weighted-fair pick: among jobs that are runnable (queued or
    /// checkpointed, tenant under quota), the smallest `issued/weight`
    /// ratio wins, compared exactly as a cross-product; lowest id on
    /// ties. `None` when nothing is runnable.
    fn pick_runnable(&self, sched: &SchedState) -> Option<u64> {
        let mut running_per_tenant: BTreeMap<&str, usize> = BTreeMap::new();
        for job in sched.jobs.values() {
            if job.status == JobStatus::Running {
                *running_per_tenant.entry(job.tenant.as_str()).or_default() += 1;
            }
        }
        let mut best: Option<(u128, u64, u64)> = None; // (issued*their_weight key fields)
        for (&job_id, job) in &sched.jobs {
            let runnable = matches!(job.status, JobStatus::Queued | JobStatus::Checkpointed);
            if !runnable {
                continue;
            }
            let running = running_per_tenant
                .get(job.tenant.as_str())
                .copied()
                .unwrap_or(0);
            if running >= self.config.tenant_quota {
                continue;
            }
            match best {
                None => best = Some((u128::from(job.issued), job.weight, job_id)),
                Some((best_issued, best_weight, _)) => {
                    // a/wa < b/wb  ⇔  a*wb < b*wa (weights ≥ 1).
                    let lhs = u128::from(job.issued) * u128::from(best_weight);
                    let rhs = best_issued * u128::from(job.weight);
                    if lhs < rhs {
                        best = Some((u128::from(job.issued), job.weight, job_id));
                    }
                }
            }
        }
        best.map(|(_, _, job_id)| job_id)
    }

    /// Advances one generation. Local engine by default; over the
    /// shared fleet when the gateway was started with one.
    fn step_one(&self, ctx: &StepContext, state: &mut JobState) -> bool {
        let engine = self.inner.engine();
        match state {
            JobState::Accel(state) => match &self.fleet {
                // Keyed by job id: with the overlap reactor on, each
                // job's speculative fork lives in its own bank slot, so
                // interleaved tenants never consume (or invalidate)
                // each other's speculation.
                Some(fleet) => fleet.step_accel_keyed(
                    ctx.job_id,
                    ctx.scenario_value.clone(),
                    engine,
                    &self.model,
                    &ctx.networks,
                    state,
                ),
                None => accel_search_step(engine, &self.model, &ctx.networks, state),
            },
            JobState::Joint(state) => match &self.fleet {
                Some(fleet) => fleet.step_joint(engine, &self.model, &self.accuracy, state),
                None => joint_search_step(engine, &self.model, &self.accuracy, state),
            },
        }
    }

    /// Parks a stepped job back in the registry: progress event,
    /// lifecycle transition, telemetry. A panicked step fails the job
    /// instead of poisoning the gateway.
    fn park(&self, ctx: StepContext, stepped: std::thread::Result<(bool, JobState)>) {
        let mut sched = self.lock();
        let Some(job) = sched.jobs.get_mut(&ctx.job_id) else {
            return;
        };
        match stepped {
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                job.status = JobStatus::Failed;
                job.error = Some(format!("generation panicked: {message}"));
                job.events.push(lifecycle_event(job.generation, "failed"));
                metrics().gateway.jobs_failed.inc();
            }
            Ok((advanced, state)) => {
                if advanced {
                    job.generation += 1;
                    metrics().gateway.job_generations.inc();
                    // Counter semantics over a gauge family: all
                    // updates happen under the scheduler lock.
                    let tenant_gauge = metrics().gateway.tenant_generations.get(&ctx.tenant);
                    tenant_gauge.set(tenant_gauge.get() + 1);
                    job.events.push(progress_event(job.generation, &state));
                }
                if job.cancel_requested {
                    job.status = JobStatus::Cancelled;
                    job.state = None;
                    job.events
                        .push(lifecycle_event(job.generation, "cancelled"));
                    metrics().gateway.jobs_cancelled.inc();
                } else if state.is_done() {
                    match finalize(&state) {
                        Ok(result) => {
                            job.status = JobStatus::Done;
                            job.result = Some(result);
                            job.events.push(lifecycle_event(job.generation, "done"));
                            metrics().gateway.jobs_completed.inc();
                        }
                        Err(error) => {
                            job.status = JobStatus::Failed;
                            job.error = Some(error);
                            job.events.push(lifecycle_event(job.generation, "failed"));
                            metrics().gateway.jobs_failed.inc();
                        }
                    }
                    job.state = None;
                } else {
                    job.status = JobStatus::Checkpointed;
                    job.state = Some(state);
                }
            }
        }
        update_gauges(&sched);
    }
}

/// What an executor carries out of the lock to step a job.
struct StepContext {
    job_id: u64,
    tenant: String,
    scenario_value: Value,
    networks: Arc<Vec<naas_ir::Network>>,
}

/// Recomputes the point-in-time job gauges. Call with the scheduler
/// lock held, after any lifecycle transition.
fn update_gauges(sched: &SchedState) {
    let running = sched
        .jobs
        .values()
        .filter(|job| job.status == JobStatus::Running)
        .count();
    let waiting = sched
        .jobs
        .values()
        .filter(|job| matches!(job.status, JobStatus::Queued | JobStatus::Checkpointed))
        .count();
    metrics().gateway.jobs_running.set(running as u64);
    metrics().gateway.jobs_queued.set(waiting as u64);
}

/// One per-generation progress event (the `job_events` payload unit).
fn progress_event(generation: u64, state: &JobState) -> Value {
    let mut fields = vec![
        ("generation".to_string(), Value::U64(generation)),
        (
            "status".to_string(),
            Value::Str(if state.is_done() {
                "done".to_string()
            } else {
                "checkpointed".to_string()
            }),
        ),
    ];
    match state {
        JobState::Accel(state) => {
            fields.push((
                "best_reward".to_string(),
                state
                    .best()
                    .map(|b| Value::F64(b.reward))
                    .unwrap_or(Value::Null),
            ));
        }
        JobState::Joint(state) => {
            fields.push((
                "best_edp".to_string(),
                state
                    .best()
                    .map(|b| Value::F64(b.edp))
                    .unwrap_or(Value::Null),
            ));
            fields.push((
                "best_accuracy".to_string(),
                state
                    .best()
                    .map(|b| Value::F64(b.accuracy))
                    .unwrap_or(Value::Null),
            ));
        }
    }
    Value::Object(fields)
}

/// A lifecycle transition event (`cancelled`, `failed`, `done`).
fn lifecycle_event(generation: u64, status: &str) -> Value {
    Value::Object(vec![
        ("generation".to_string(), Value::U64(generation)),
        ("status".to_string(), Value::Str(status.to_string())),
    ])
}

/// Strips shared-engine cache telemetry out of a serialized search
/// state. `SearchState` stamps `engine.cache_stats()` into each
/// checkpoint as operator-facing bookkeeping, but on a multiplexed
/// engine those counters aggregate *every* tenant's evaluations — they
/// are a property of the engine, not of the job. Nulling them is what
/// makes a gateway job's result byte-identical to the same job run
/// alone (the correctness claim the gateway tests enforce); the live
/// numbers stay available via the `cache_stats` and `metrics` commands.
fn scrub_engine_telemetry(value: Value) -> Value {
    match value {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .map(|(key, field)| {
                    if key == "cache_stats" {
                        (key, Value::Null)
                    } else {
                        (key, scrub_engine_telemetry(field))
                    }
                })
                .collect(),
        ),
        Value::Array(items) => {
            Value::Array(items.into_iter().map(scrub_engine_telemetry).collect())
        }
        other => other,
    }
}

/// Builds the finished job's result object: kind, design card, the
/// scalar outcome, the Pareto front (when the search ran with one) and
/// the complete final search state (cache telemetry scrubbed). Fully
/// deterministic, so equality with a solo run is byte equality of the
/// serialized object.
fn finalize(state: &JobState) -> Result<Value, String> {
    match state {
        JobState::Accel(state) => {
            let best = state
                .best()
                .ok_or_else(|| "no valid design found within budget".to_string())?;
            Ok(Value::Object(vec![
                ("kind".to_string(), Value::Str("accel".to_string())),
                (
                    "design_card".to_string(),
                    Value::Str(best.accelerator.design_card()),
                ),
                ("reward".to_string(), Value::F64(best.reward)),
                (
                    "objectives".to_string(),
                    serde_json::to_value(&best.objectives),
                ),
                ("front".to_string(), serde_json::to_value(&state.archive())),
                (
                    "state".to_string(),
                    scrub_engine_telemetry(serde_json::to_value(state)),
                ),
            ]))
        }
        JobState::Joint(state) => {
            let best = state
                .best()
                .ok_or_else(|| "no accuracy-feasible design found within budget".to_string())?;
            Ok(Value::Object(vec![
                ("kind".to_string(), Value::Str("joint".to_string())),
                (
                    "design_card".to_string(),
                    Value::Str(best.accelerator.design_card()),
                ),
                ("edp".to_string(), Value::F64(best.edp)),
                ("accuracy".to_string(), Value::F64(best.accuracy)),
                (
                    "evaluations".to_string(),
                    Value::U64(best.evaluations as u64),
                ),
                ("front".to_string(), serde_json::to_value(&state.archive())),
                (
                    "state".to_string(),
                    scrub_engine_telemetry(serde_json::to_value(state)),
                ),
            ]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn gateway(config: GatewayConfig) -> GatewayService {
        let inner = Arc::new(
            BatchEvalService::new(ServiceConfig {
                threads: 2,
                ..ServiceConfig::default()
            })
            .expect("service construction"),
        );
        GatewayService::start(inner, None, config)
    }

    fn parsed(line: &str) -> Value {
        serde_json::parse_str(line).expect("response is valid JSON")
    }

    fn result_of(line: &str) -> Value {
        let v = parsed(line);
        assert_eq!(
            v.get("ok"),
            Some(&Value::Bool(true)),
            "expected ok response, got: {line}"
        );
        v.get("result").cloned().expect("ok response has a result")
    }

    #[test]
    fn submit_runs_a_job_to_done_and_serves_its_result() {
        let gw = gateway(GatewayConfig {
            executors: 1,
            ..GatewayConfig::default()
        });
        let reply =
            result_of(&gw.respond(
                r#"{"id": 1, "cmd": "job_submit", "scenario": "cifar-eyeriss", "seed": 7}"#,
            ));
        assert_eq!(reply.get("job_id"), Some(&Value::U64(1)));
        gw.wait_idle();
        let status = result_of(&gw.respond(r#"{"id": 2, "cmd": "job_status", "job_id": 1}"#));
        assert_eq!(
            status.get("status"),
            Some(&Value::Str("done".to_string())),
            "job should finish: {status:?}"
        );
        let result = result_of(&gw.respond(r#"{"id": 3, "cmd": "job_result", "job_id": 1}"#));
        assert_eq!(result.get("kind"), Some(&Value::Str("accel".to_string())));
        assert!(result.get("design_card").is_some());
        // The event stream saw every generation plus the terminal event.
        let events = result_of(&gw.respond(r#"{"id": 4, "cmd": "job_events", "job_id": 1}"#));
        let list = events.get("events").and_then(Value::as_array).unwrap();
        assert!(!list.is_empty());
        assert_eq!(events.get("done"), Some(&Value::Bool(true)));
    }

    #[test]
    fn over_capacity_submits_are_rejected_explicitly() {
        let gw = gateway(GatewayConfig {
            max_jobs: 1,
            executors: 1,
            ..GatewayConfig::default()
        });
        result_of(&gw.respond(r#"{"id": 1, "cmd": "job_submit", "scenario": "cifar-eyeriss"}"#));
        let reply =
            parsed(&gw.respond(r#"{"id": 2, "cmd": "job_submit", "scenario": "cifar-eyeriss"}"#));
        assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
        let error = reply.get("error").and_then(Value::as_str).unwrap();
        assert!(
            error.starts_with("rejected:over_capacity"),
            "unexpected rejection message: {error}"
        );
        gw.wait_idle();
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        // No executors would be ideal; use a full-quota trick instead:
        // tenant quota 1 and a running job starve the second one.
        let gw = gateway(GatewayConfig {
            executors: 1,
            tenant_quota: 1,
            ..GatewayConfig::default()
        });
        result_of(&gw.respond(r#"{"id": 1, "cmd": "job_submit", "scenario": "cifar-eyeriss"}"#));
        result_of(
            &gw.respond(
                r#"{"id": 2, "cmd": "job_submit", "scenario": "cifar-eyeriss", "seed": 9}"#,
            ),
        );
        let cancel = result_of(&gw.respond(r#"{"id": 3, "cmd": "job_cancel", "job_id": 2}"#));
        let status = cancel.get("status").and_then(Value::as_str).unwrap();
        assert!(
            status == "cancelled" || status == "checkpointed" || status == "running",
            "unexpected post-cancel status: {status}"
        );
        gw.wait_idle();
        let final_status = result_of(&gw.respond(r#"{"id": 4, "cmd": "job_status", "job_id": 2}"#));
        assert_eq!(
            final_status.get("status"),
            Some(&Value::Str("cancelled".to_string()))
        );
        let result = parsed(&gw.respond(r#"{"id": 5, "cmd": "job_result", "job_id": 2}"#));
        assert_eq!(result.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn hello_advertises_the_jobs_capability() {
        let gw = gateway(GatewayConfig::default());
        let reply = result_of(&gw.respond(r#"{"id": 1, "cmd": "hello"}"#));
        let caps = reply.get("capabilities").and_then(Value::as_array).unwrap();
        assert!(caps.contains(&Value::Str("jobs".to_string())));
        let server = reply.get("server").and_then(Value::as_str).unwrap();
        assert!(server.contains("gateway"), "server banner: {server}");
    }

    #[test]
    fn base_commands_fall_through_to_the_wrapped_service() {
        let gw = gateway(GatewayConfig::default());
        let stats = result_of(&gw.respond(r#"{"id": 1, "cmd": "cache_stats"}"#));
        assert!(stats.get("hits").is_some());
        let reply = parsed(&gw.respond(r#"{"id": 2, "cmd": "job_status", "job_id": 99}"#));
        assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    }
}
