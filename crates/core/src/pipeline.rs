//! The allocation-free batched evaluation pipeline: batch propose →
//! batch decode → batch evaluate, with every intermediate in recycled
//! buffers.
//!
//! One [`EvalPipeline`] owns all the working memory one generation of the
//! inner mapping search needs — theta vectors from the optimizer, decoded
//! [`Mapping`] candidates, per-candidate cost results, the cost model's
//! [`EvalScratch`], and the scored-generation pool handed back to
//! [`Optimizer::tell`]. Buffers grow to their high-water size during the
//! first generation and are then reused for the rest of the search — and,
//! through [`with_thread_pipeline`], for every other search that runs on
//! the same worker thread. That per-worker reuse is how the engine's pool
//! jobs carry scratch: `parallel_map` workers are plain threads, so each
//! lands on its own thread-local pipeline with no coordination.
//!
//! ## Bit-identical batching
//!
//! The scalar loop this replaces drew thetas one at a time, resampling a
//! slot until a capacity-valid candidate appeared (§II-A0c). Batching
//! must not change the RNG stream, so a generation runs in *rounds*: each
//! round batch-asks exactly one theta per unfinished slot, then replays
//! the draws through the same greedy slot automaton the scalar loop
//! executed. Every unfinished slot consumes at least one draw before it
//! terminates (a slot ends only on a valid draw or on hitting its attempt
//! limit), so a round never over-draws — the optimizer's RNG advances by
//! precisely the draws the scalar loop would have made, in the same
//! order, and results stay bit-identical.

use naas_accel::Accelerator;
use naas_cost::{CostError, CostModel, EvalScratch, LayerCost};
use naas_ir::{ConvSpec, DIMS};
use naas_mapping::Mapping;
use naas_opt::{MappingEncoder, Optimizer};
use std::cell::RefCell;

/// Outcome of one batched generation, borrowed from the pipeline's
/// recycled buffers.
pub struct GenerationOutcome {
    /// Scored entries valid this generation (`pipeline.scored(n)`).
    pub scored: usize,
    /// Capacity-valid candidates evaluated this generation.
    pub valid: usize,
}

/// Reusable working memory for batched layer-mapping generations.
///
/// # Examples
///
/// A caller-owned pipeline drives a whole layer search through
/// [`crate::mapping_search::search_layer_mapping_with`]; reusing it
/// across searches reuses every internal buffer (which is exactly what
/// [`with_thread_pipeline`] does per worker thread):
///
/// ```
/// use naas::{EvalPipeline, MappingSearchConfig};
/// use naas::mapping_search::search_layer_mapping_with;
/// use naas::prelude::*;
///
/// let model = CostModel::new();
/// let accel = baselines::eyeriss();
/// let layer = ConvSpec::conv2d("c", 16, 32, (16, 16), (3, 3), 1, 1).unwrap();
///
/// let mut pipeline = EvalPipeline::new();
/// let cfg = MappingSearchConfig::quick(7);
/// let first = search_layer_mapping_with(&mut pipeline, &model, &layer, &accel, &cfg)
///     .expect("layer is mappable");
/// // Same pipeline, same search ⇒ bit-identical result (batching is
/// // RNG-transparent and buffers carry no state between searches).
/// let again = search_layer_mapping_with(&mut pipeline, &model, &layer, &accel, &cfg)
///     .expect("layer is mappable");
/// assert_eq!(first.mapping, again.mapping);
/// assert_eq!(first.cost.edp(), again.cost.edp());
/// ```
#[derive(Default)]
pub struct EvalPipeline {
    /// One proposal buffer per pending slot (batch-ask targets).
    thetas: Vec<Vec<f64>>,
    /// Decoded candidate per proposal, allocations recycled.
    mappings: Vec<Mapping>,
    /// Batch evaluation results, one per proposal.
    results: Vec<Result<LayerCost, CostError>>,
    /// The cost model's tile/loop scratch.
    scratch: EvalScratch,
    /// Scored-generation pool passed to `Optimizer::tell`; entries are
    /// overwritten in place each generation.
    scored: Vec<(Vec<f64>, f64)>,
}

impl EvalPipeline {
    /// Creates an empty pipeline; buffers grow on first use.
    pub fn new() -> Self {
        EvalPipeline::default()
    }

    /// The cost model scratch, for callers that interleave scalar
    /// evaluations (e.g. the heuristic seed) with batched generations.
    pub fn scratch_mut(&mut self) -> &mut EvalScratch {
        &mut self.scratch
    }

    /// The first `n` scored entries of the last generation, in slot
    /// order — the slice handed to [`Optimizer::tell`].
    pub fn scored(&self, n: usize) -> &[(Vec<f64>, f64)] {
        &self.scored[..n]
    }

    /// Grows the proposal buffers to at least `n` slots.
    fn reserve_proposals(&mut self, n: usize) {
        while self.thetas.len() < n {
            self.thetas.push(Vec::new());
        }
        while self.mappings.len() < n {
            self.mappings.push(Mapping::new(Vec::new(), DIMS));
        }
    }

    /// Runs one generation of the batched propose → evaluate cycle for
    /// `population` slots: repeatedly batch-asks one theta per unfinished
    /// slot, batch-decodes, batch-evaluates, and feeds the draws through
    /// the greedy resample automaton (valid candidate → slot scored with
    /// its EDP; `resample_limit` invalid draws → slot scored infeasible
    /// with its last theta). Updates `best` exactly like the scalar loop:
    /// in draw order, strict improvement only.
    ///
    /// Returns how many scored entries and valid evaluations the
    /// generation produced; the caller passes `self.scored(outcome.scored)`
    /// to [`Optimizer::tell`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_generation(
        &mut self,
        es: &mut dyn Optimizer,
        encoder: &MappingEncoder,
        model: &CostModel,
        layer: &ConvSpec,
        accel: &Accelerator,
        population: usize,
        resample_limit: usize,
        best: &mut Option<(Mapping, LayerCost)>,
    ) -> GenerationOutcome {
        if resample_limit == 0 {
            // The scalar loop made no draws at all in this configuration.
            return GenerationOutcome {
                scored: 0,
                valid: 0,
            };
        }
        while self.scored.len() < population {
            self.scored.push((Vec::new(), 0.0));
        }
        self.reserve_proposals(population);

        let pipeline_metrics = &naas_engine::telemetry::metrics().pipeline;
        let mut valid = 0usize;
        // The greedy automaton: slots fill strictly in order, so the only
        // live state is the current slot and its attempt count.
        let mut cur = 0usize;
        let mut cur_attempts = 0usize;
        while cur < population {
            let pending = population - cur;
            pipeline_metrics.evaluations.add(pending as u64);
            es.ask_batch_into(&mut self.thetas[..pending]);
            for i in 0..pending {
                encoder.decode_into(
                    &self.thetas[i],
                    layer,
                    accel.connectivity(),
                    &mut self.mappings[i],
                );
            }
            model.evaluate_batch(
                layer,
                accel,
                &self.mappings[..pending],
                &mut self.scratch,
                &mut self.results,
            );
            for i in 0..pending {
                debug_assert!(cur < population, "round over-drew the optimizer");
                cur_attempts += 1;
                let entry = &mut self.scored[cur];
                entry.0.clear();
                entry.0.extend_from_slice(&self.thetas[i]);
                match &self.results[i] {
                    Ok(cost) => {
                        valid += 1;
                        let edp = cost.edp();
                        if best.as_ref().is_none_or(|(_, b)| edp < b.edp()) {
                            *best = Some((self.mappings[i].clone(), *cost));
                        }
                        entry.1 = edp;
                        cur += 1;
                        cur_attempts = 0;
                    }
                    Err(_) => {
                        pipeline_metrics.resamples.inc();
                        entry.1 = f64::INFINITY;
                        if cur_attempts == resample_limit {
                            cur += 1;
                            cur_attempts = 0;
                        }
                    }
                }
            }
        }
        GenerationOutcome {
            scored: population,
            valid,
        }
    }
}

thread_local! {
    static PIPELINE: RefCell<EvalPipeline> = RefCell::new(EvalPipeline::new());
}

/// Runs `f` with this worker thread's [`EvalPipeline`]. Engine pool jobs
/// route their inner searches through here, so every worker reuses one
/// set of buffers across all the layer searches it executes.
pub fn with_thread_pipeline<R>(f: impl FnOnce(&mut EvalPipeline) -> R) -> R {
    PIPELINE.with(|p| match p.try_borrow_mut() {
        Ok(mut pipeline) => f(&mut pipeline),
        // Re-entrant call (a caller's closure itself runs a search):
        // fall back to a fresh pipeline rather than aliasing the buffers.
        Err(_) => f(&mut EvalPipeline::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_opt::{CemEs, EncodingScheme, EsConfig};

    #[test]
    fn generation_scores_every_slot() {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let layer = ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
        let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
        let mut es = CemEs::new(encoder.dim(), EsConfig::default(), 11);
        let mut pipe = EvalPipeline::new();
        let mut best = None;
        let out = pipe.run_generation(&mut es, &encoder, &model, &layer, &accel, 8, 25, &mut best);
        assert_eq!(out.scored, 8);
        assert!(out.valid > 0 && out.valid <= 8);
        assert!(best.is_some());
        for (theta, score) in pipe.scored(out.scored) {
            assert_eq!(theta.len(), encoder.dim());
            assert!(*score > 0.0);
        }
    }

    #[test]
    fn zero_resample_limit_draws_nothing() {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let layer = ConvSpec::conv2d("c", 16, 16, (8, 8), (3, 3), 1, 1).unwrap();
        let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
        let mut a = CemEs::new(encoder.dim(), EsConfig::default(), 5);
        let mut b = CemEs::new(encoder.dim(), EsConfig::default(), 5);
        let mut pipe = EvalPipeline::new();
        let mut best = None;
        let out = pipe.run_generation(&mut a, &encoder, &model, &layer, &accel, 4, 0, &mut best);
        assert_eq!((out.scored, out.valid), (0, 0));
        // The optimizer's RNG must not have advanced.
        assert_eq!(a.ask(), b.ask());
    }

    #[test]
    fn thread_pipeline_is_reusable_and_reentrant() {
        let x = with_thread_pipeline(|_| with_thread_pipeline(|_| 42));
        assert_eq!(x, 42);
    }
}
