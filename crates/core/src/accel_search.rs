//! The outer loop of NAAS: accelerator architecture search (paper §II-A).
//!
//! Evolves complete design points — architectural sizing *and*
//! connectivity — inside a resource envelope. Each candidate is scored by
//! running the inner mapping search on every benchmark network and taking
//! the geometric mean of the per-network EDPs (§III-B). Invalid samples
//! (envelope violations, un-mappable designs) are resampled, exactly as
//! described in §II-A0c.

use crate::mapping_search::{network_mapping_search, MappingSearchConfig};
use crate::reward::RewardKind;
use naas_accel::{Accelerator, ResourceConstraint};
use naas_cost::{CostModel, NetworkCost};
use naas_ir::Network;
use naas_opt::{CemEs, EncodingScheme, EsConfig, HardwareEncoder, Optimizer, RandomSearch};
use serde::{Deserialize, Serialize};

/// Outer-loop sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// The paper's evolution strategy.
    Evolution,
    /// Uniform random sampling (Fig. 4 baseline).
    Random,
}

/// Configuration of the accelerator search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelSearchConfig {
    /// Hardware candidates per generation (population size).
    pub population: usize,
    /// Generations (Fig. 4 runs 15).
    pub iterations: usize,
    /// Encoding for connectivity parameters (Fig. 9 ablates this).
    pub scheme: EncodingScheme,
    /// Evolution vs. random sampling.
    pub strategy: SearchStrategy,
    /// Evolution-strategy hyper-parameters.
    pub es: EsConfig,
    /// Budget of the inner (mapping) search per layer.
    pub mapping: MappingSearchConfig,
    /// How per-network EDPs aggregate into the reward (geomean in the
    /// paper; worst-case ablated in `ablation_reward`).
    pub reward: RewardKind,
    /// Attempts to decode a valid design per population slot.
    pub resample_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation (0 = all cores).
    pub threads: usize,
}

impl AccelSearchConfig {
    /// The paper's budget: population 20 × 15 iterations.
    pub fn paper(seed: u64) -> Self {
        AccelSearchConfig {
            population: 20,
            iterations: 15,
            scheme: EncodingScheme::Importance,
            strategy: SearchStrategy::Evolution,
            es: EsConfig::default(),
            mapping: MappingSearchConfig::default(),
            reward: RewardKind::Geomean,
            resample_limit: 50,
            seed,
            threads: 0,
        }
    }

    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        AccelSearchConfig {
            population: 6,
            iterations: 3,
            mapping: MappingSearchConfig::quick(seed),
            ..AccelSearchConfig::paper(seed)
        }
    }
}

/// A fully evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelCandidate {
    /// The decoded design.
    pub accelerator: Accelerator,
    /// Mapping-searched cost per benchmark network, in input order.
    pub per_network: Vec<NetworkCost>,
    /// Geometric-mean EDP across the benchmarks (the outer reward).
    pub reward: f64,
}

/// Population statistics per generation — the data behind Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Generation index (0-based).
    pub iteration: usize,
    /// Mean EDP of the generation's valid candidates.
    pub mean_edp: f64,
    /// Best (lowest) EDP seen up to and including this generation.
    pub best_edp: f64,
    /// Valid candidates in this generation.
    pub valid: usize,
}

/// Result of an accelerator search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelSearchResult {
    /// The best candidate found.
    pub best: AccelCandidate,
    /// Per-generation statistics (Fig. 4).
    pub history: Vec<IterationStats>,
    /// Total valid candidate evaluations.
    pub evaluations: usize,
}

/// Evaluates one decoded design against a benchmark suite: runs the
/// mapping search per network and aggregates the reward.
/// Returns `None` if any network has an un-mappable layer on this design.
pub fn evaluate_candidate(
    model: &CostModel,
    accel: &Accelerator,
    networks: &[Network],
    mapping_cfg: &MappingSearchConfig,
    reward_kind: RewardKind,
) -> Option<(Vec<NetworkCost>, f64)> {
    let mut per_network = Vec::with_capacity(networks.len());
    for net in networks {
        per_network.push(network_mapping_search(model, net, accel, mapping_cfg)?);
    }
    let edps: Vec<f64> = per_network.iter().map(NetworkCost::edp).collect();
    let reward = reward_kind.aggregate(&edps);
    Some((per_network, reward))
}

/// Runs the NAAS outer loop: search accelerator + mapping within a
/// resource envelope for a set of benchmark networks.
///
/// # Panics
///
/// Panics if `networks` is empty, or if not a single valid design was
/// found over the entire budget (which indicates an envelope too small
/// for the benchmark suite).
pub fn search_accelerator(
    model: &CostModel,
    networks: &[Network],
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
) -> AccelSearchResult {
    search_accelerator_seeded(model, networks, constraint, cfg, &[])
}

/// [`search_accelerator`] with warm-start seeds: incumbent designs (for
/// instance the envelope's source baseline) are encoded into the first
/// generation, so the search never loses to a design it was given — the
/// data-driven loop starts from the human design and improves it.
///
/// Seeds that do not fit the envelope or cannot be expressed in the
/// encoding are silently skipped.
///
/// # Panics
///
/// Same conditions as [`search_accelerator`].
pub fn search_accelerator_seeded(
    model: &CostModel,
    networks: &[Network],
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
    seeds: &[Accelerator],
) -> AccelSearchResult {
    assert!(!networks.is_empty(), "need at least one benchmark network");
    let encoder = HardwareEncoder::new(constraint.clone(), cfg.scheme);
    let mut opt: Box<dyn Optimizer> = match cfg.strategy {
        SearchStrategy::Evolution => Box::new(CemEs::new(encoder.dim(), cfg.es, cfg.seed)),
        SearchStrategy::Random => Box::new(RandomSearch::new(encoder.dim(), cfg.seed)),
    };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };

    let mut best: Option<AccelCandidate> = None;
    let mut best_theta: Option<Vec<f64>> = None;
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut evaluations = 0usize;

    for iteration in 0..cfg.iterations {
        // Sample the generation (sequential: the ES is stateful).
        let mut slots: Vec<(Vec<f64>, Accelerator)> = Vec::with_capacity(cfg.population);
        let mut rejected: Vec<Vec<f64>> = Vec::new();
        if iteration == 0 {
            // Warm-start: incumbent designs join the first generation.
            for seed_design in seeds {
                if let Some(theta) = encoder.encode(seed_design) {
                    if let Some(decoded) = encoder.decode(&theta) {
                        slots.push((theta, decoded));
                    }
                }
            }
        }
        while slots.len() < cfg.population {
            let mut found = false;
            for _ in 0..cfg.resample_limit {
                let theta = opt.ask();
                if let Some(accel) = encoder.decode(&theta) {
                    slots.push((theta, accel));
                    found = true;
                    break;
                } else {
                    rejected.push(theta);
                }
            }
            if !found {
                break; // envelope nearly un-satisfiable; keep what we have
            }
        }

        // Evaluate candidates in parallel, deterministically seeded.
        let mapping_cfgs: Vec<MappingSearchConfig> = (0..slots.len())
            .map(|slot| MappingSearchConfig {
                seed: cfg
                    .seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((iteration * cfg.population + slot) as u64),
                ..cfg.mapping
            })
            .collect();
        let mut results: Vec<Option<(Vec<NetworkCost>, f64)>> = vec![None; slots.len()];
        std::thread::scope(|scope| {
            for (chunk_idx, (slot_chunk, result_chunk)) in slots
                .chunks(slots.len().div_ceil(threads).max(1))
                .zip(results.chunks_mut(slots.len().div_ceil(threads).max(1)))
                .enumerate()
            {
                let mapping_cfgs = &mapping_cfgs;
                let base = chunk_idx * slots.len().div_ceil(threads).max(1);
                scope.spawn(move || {
                    for (i, ((_, accel), out)) in
                        slot_chunk.iter().zip(result_chunk.iter_mut()).enumerate()
                    {
                        *out = evaluate_candidate(
                            model,
                            accel,
                            networks,
                            &mapping_cfgs[base + i],
                            cfg.reward,
                        );
                    }
                });
            }
        });

        // Collect scores; infeasible candidates score +inf, rejected
        // decodes are also reported to the optimizer as infeasible.
        let mut scored: Vec<(Vec<f64>, f64)> = Vec::with_capacity(slots.len() + rejected.len());
        let mut edps = Vec::new();
        for ((theta, accel), result) in slots.into_iter().zip(results) {
            match result {
                Some((per_network, reward)) => {
                    evaluations += 1;
                    edps.push(reward);
                    if best.as_ref().is_none_or(|b| reward < b.reward) {
                        best = Some(AccelCandidate {
                            accelerator: accel,
                            per_network,
                            reward,
                        });
                        best_theta = Some(theta.clone());
                    }
                    scored.push((theta, reward));
                }
                None => scored.push((theta, f64::INFINITY)),
            }
        }
        for theta in rejected {
            scored.push((theta, f64::INFINITY));
        }
        // Light elitism: the best-so-far vector re-enters the
        // distribution update on alternating generations — enough to keep
        // the attractor alive without collapsing exploration onto the
        // warm-start seed.
        if iteration % 2 == 1 {
            if let (Some(theta), Some(b)) = (&best_theta, &best) {
                scored.push((theta.clone(), b.reward));
            }
        }
        opt.tell(&scored);

        history.push(IterationStats {
            iteration,
            mean_edp: if edps.is_empty() {
                f64::INFINITY
            } else {
                edps.iter().sum::<f64>() / edps.len() as f64
            },
            best_edp: best.as_ref().map_or(f64::INFINITY, |b| b.reward),
            valid: edps.len(),
        });
    }

    AccelSearchResult {
        best: best.expect("no valid accelerator found in the entire search budget"),
        history,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    fn tiny_net() -> Network {
        models::cifar_resnet20()
    }

    #[test]
    fn search_returns_valid_design_within_envelope() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let result = search_accelerator(
            &model,
            &[tiny_net()],
            &envelope,
            &AccelSearchConfig::quick(1),
        );
        assert!(envelope.admits(&result.best.accelerator).is_ok());
        assert!(result.best.reward > 0.0);
        assert_eq!(result.history.len(), 3);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = AccelSearchConfig::quick(77);
        let a = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        let b = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        assert_eq!(a.best.accelerator, b.best.accelerator);
        assert_eq!(a.best.reward, b.best.reward);
    }

    #[test]
    fn best_edp_is_monotone_in_history() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::nvdla(256));
        let result = search_accelerator(
            &model,
            &[tiny_net()],
            &envelope,
            &AccelSearchConfig::quick(5),
        );
        for w in result.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn multi_network_reward_is_geomean() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::nvdla(256));
        let nets = [tiny_net(), models::nasaic_cifar_net()];
        let result =
            search_accelerator(&model, &nets, &envelope, &AccelSearchConfig::quick(2));
        let edps: Vec<f64> = result.best.per_network.iter().map(|c| c.edp()).collect();
        assert_eq!(edps.len(), 2);
        assert!((result.best.reward - crate::reward::geomean(&edps)).abs() / result.best.reward < 1e-9);
    }

    #[test]
    fn random_strategy_runs() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = AccelSearchConfig {
            strategy: SearchStrategy::Random,
            ..AccelSearchConfig::quick(3)
        };
        let result = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        assert!(result.best.reward.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn empty_benchmarks_rejected() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let _ = search_accelerator(&model, &[], &envelope, &AccelSearchConfig::quick(1));
    }

    #[test]
    fn seeded_search_never_loses_to_its_seed() {
        let model = CostModel::new();
        let baseline = baselines::edge_tpu();
        let envelope = ResourceConstraint::from_design(&baseline);
        let net = tiny_net();
        let cfg = AccelSearchConfig::quick(13);
        let result = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &cfg,
            std::slice::from_ref(&baseline),
        );
        // The seed itself was evaluated in generation 0 with the same
        // mapping budget, so the final best can only match or beat it.
        let seed_cost = crate::mapping_search::network_mapping_search(
            &model,
            &net,
            &baseline,
            &MappingSearchConfig {
                seed: cfg.seed.wrapping_mul(1_000_003),
                ..cfg.mapping
            },
        )
        .expect("edge tpu maps the net");
        assert!(
            result.best.reward <= seed_cost.edp() * 1.0001,
            "seeded search lost to its seed: {} vs {}",
            result.best.reward,
            seed_cost.edp()
        );
    }
}
