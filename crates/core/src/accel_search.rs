//! The outer loop of NAAS: accelerator architecture search (paper §II-A).
//!
//! Evolves complete design points — architectural sizing *and*
//! connectivity — inside a resource envelope. Each candidate is scored by
//! running the inner mapping search on every benchmark network and taking
//! the geometric mean of the per-network EDPs (§III-B). Invalid samples
//! (envelope violations, un-mappable designs) are resampled, exactly as
//! described in §II-A0c.
//!
//! Execution goes through [`crate::engine::CoSearchEngine`]: candidates
//! of a generation are evaluated on the work-stealing pool
//! (`naas_engine::parallel_map`), per-layer mapping searches are memoized
//! in the shared content-addressed cache, and inner seeds are derived
//! from content — so results are bit-identical at any thread count, cold
//! or warm cache. The search itself is expressed as a serializable
//! [`AccelSearchState`] advanced one generation at a time
//! ([`accel_search_step`]), which is what checkpoint/resume and
//! service-style batch evaluation build on.

use crate::engine::CoSearchEngine;
use crate::mapping_search::MappingSearchConfig;
use crate::pareto::ParetoArchive;
use crate::reward::{ObjectivePolicy, RewardKind};
use naas_accel::{area::AreaModel, Accelerator, ResourceConstraint};
use naas_cost::{CostModel, NetworkCost, ObjectiveVector};
use naas_engine::{parallel_map, CacheStats, CheckpointPolicy};
use naas_ir::Network;
use naas_opt::{CemEs, EncodingScheme, EsConfig, HardwareEncoder, Optimizer, RandomSearch};
use serde::{Deserialize, Serialize};

/// Outer-loop sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// The paper's evolution strategy.
    Evolution,
    /// Uniform random sampling (Fig. 4 baseline).
    Random,
}

/// Configuration of the accelerator search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelSearchConfig {
    /// Hardware candidates per generation (population size).
    pub population: usize,
    /// Generations (Fig. 4 runs 15).
    pub iterations: usize,
    /// Encoding for connectivity parameters (Fig. 9 ablates this).
    pub scheme: EncodingScheme,
    /// Evolution vs. random sampling.
    pub strategy: SearchStrategy,
    /// Evolution-strategy hyper-parameters.
    pub es: EsConfig,
    /// Budget of the inner (mapping) search per layer.
    pub mapping: MappingSearchConfig,
    /// How per-network EDPs aggregate into the reward (geomean in the
    /// paper; worst-case ablated in `ablation_reward`).
    pub reward: RewardKind,
    /// Scalar-only search (the default) or scalar + Pareto archive.
    /// Never changes the trajectory — see [`ObjectivePolicy`].
    pub objectives: ObjectivePolicy,
    /// Attempts to decode a valid design per population slot.
    pub resample_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation (`0` = all cores), routed
    /// through the engine's work-stealing pool.
    pub threads: usize,
}

impl AccelSearchConfig {
    /// The paper's budget: population 20 × 15 iterations.
    pub fn paper(seed: u64) -> Self {
        AccelSearchConfig {
            population: 20,
            iterations: 15,
            scheme: EncodingScheme::Importance,
            strategy: SearchStrategy::Evolution,
            es: EsConfig::default(),
            mapping: MappingSearchConfig::default(),
            reward: RewardKind::Geomean,
            objectives: ObjectivePolicy::Scalar,
            resample_limit: 50,
            seed,
            threads: 0,
        }
    }

    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        AccelSearchConfig {
            population: 6,
            iterations: 3,
            mapping: MappingSearchConfig::quick(seed),
            ..AccelSearchConfig::paper(seed)
        }
    }
}

/// One candidate's complete evaluation — what flows up from the cost
/// layer through every seam (local pool, `evaluate_shard` wire,
/// coordinator merge) before anything is collapsed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEval {
    /// Mapping-searched whole-suite cost per benchmark network, in
    /// input order — the only place per-network quantities survive.
    pub per_network: Vec<NetworkCost>,
    /// The multi-objective view: suite latency and energy summed over
    /// `per_network`, the design's area, and the matched accuracy
    /// ([`ObjectiveVector::NO_ACCURACY`] in accelerator-only searches).
    pub objectives: ObjectiveVector,
    /// The scalarized reward ([`RewardKind::aggregate`] over the
    /// per-network EDPs) — the one number the optimizer consumes.
    pub reward: f64,
}

/// A fully evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelCandidate {
    /// The decoded design.
    pub accelerator: Accelerator,
    /// Mapping-searched cost per benchmark network, in input order.
    pub per_network: Vec<NetworkCost>,
    /// The candidate's objective vector (latency, energy, area,
    /// accuracy) — carried alongside the scalar, never re-derived.
    pub objectives: ObjectiveVector,
    /// The scalarized reward: [`RewardKind::aggregate`] over the
    /// per-network whole-suite EDPs (geomean in the paper's setup).
    pub reward: f64,
}

/// Population statistics per generation — the data behind Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Generation index (0-based).
    pub iteration: usize,
    /// Mean *scalarized reward* ([`RewardKind::aggregate`] of each
    /// candidate's per-network EDPs) over the generation's valid
    /// candidates. Named `mean_edp` for checkpoint stability; under the
    /// default geomean policy it is the mean of geomean-EDPs.
    pub mean_edp: f64,
    /// Best (lowest) scalarized reward seen up to and including this
    /// generation.
    pub best_edp: f64,
    /// Valid candidates in this generation.
    pub valid: usize,
}

/// Result of an accelerator search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelSearchResult {
    /// The best candidate found.
    pub best: AccelCandidate,
    /// Per-generation statistics (Fig. 4).
    pub history: Vec<IterationStats>,
    /// Total valid candidate evaluations.
    pub evaluations: usize,
    /// The engine's cache counters as of this search's last generation.
    /// Counters are engine-lifetime: on a shared engine they include
    /// traffic from everything else that ran on it.
    pub cache_stats: CacheStats,
}

/// A search exhausted its entire budget without finding one valid
/// design — an envelope too small for the benchmark suite. This is a
/// reachable outcome of user inputs (CLI scenarios, service requests),
/// not a programming error, so it surfaces as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoValidDesign;

impl std::fmt::Display for NoValidDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no valid accelerator found in the entire search budget \
             (the resource envelope is too small for the benchmark suite)"
        )
    }
}

impl std::error::Error for NoValidDesign {}

/// The outer optimizer in serializable form (checkpoints need concrete
/// types, not `Box<dyn Optimizer>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchOptimizer {
    /// The paper's evolution strategy.
    Evolution(CemEs),
    /// The uniform-random baseline.
    Random(RandomSearch),
}

impl SearchOptimizer {
    fn new(dim: usize, cfg: &AccelSearchConfig) -> Self {
        match cfg.strategy {
            SearchStrategy::Evolution => {
                SearchOptimizer::Evolution(CemEs::new(dim, cfg.es, cfg.seed))
            }
            SearchStrategy::Random => SearchOptimizer::Random(RandomSearch::new(dim, cfg.seed)),
        }
    }
}

impl Optimizer for SearchOptimizer {
    fn ask_into(&mut self, out: &mut Vec<f64>) {
        match self {
            SearchOptimizer::Evolution(es) => es.ask_into(out),
            SearchOptimizer::Random(rs) => rs.ask_into(out),
        }
    }

    fn tell(&mut self, scored: &[(Vec<f64>, f64)]) {
        match self {
            SearchOptimizer::Evolution(es) => es.tell(scored),
            SearchOptimizer::Random(rs) => rs.tell(scored),
        }
    }

    fn dim(&self) -> usize {
        match self {
            SearchOptimizer::Evolution(es) => es.dim(),
            SearchOptimizer::Random(rs) => rs.dim(),
        }
    }
}

/// The complete, serializable state of an accelerator search between
/// generations: snapshot it with `naas_engine::checkpoint::save`, restore
/// it, and the search continues the exact trajectory of an uninterrupted
/// run. Benchmark networks are *not* embedded (they are cheap to rebuild
/// and the checkpoint stays design-sized); the resuming caller must
/// supply the same suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelSearchState {
    /// The search configuration (budgets, seed, strategy).
    pub config: AccelSearchConfig,
    /// The resource envelope being searched.
    pub constraint: ResourceConstraint,
    /// Generations completed so far.
    pub iteration: usize,
    /// Warm-start vectors, consumed by generation 0.
    seed_thetas: Vec<Vec<f64>>,
    optimizer: SearchOptimizer,
    best: Option<AccelCandidate>,
    best_theta: Option<Vec<f64>>,
    history: Vec<IterationStats>,
    evaluations: usize,
    /// The Pareto front, present iff the config's [`ObjectivePolicy`]
    /// is `Pareto`. Serialized with the state so a resumed run restores
    /// a bit-identical front (`Option` so pre-archive checkpoints,
    /// where the field reads as null, still load).
    archive: Option<ParetoArchive>,
    /// Cache counters as of the last completed generation
    /// (informational; the cache itself is content-addressed and
    /// rebuilds on demand after resume).
    pub cache_stats: CacheStats,
}

impl AccelSearchState {
    /// `true` once every configured generation has run.
    pub fn is_done(&self) -> bool {
        self.iteration >= self.config.iterations
    }

    /// The best candidate found so far, if any generation produced a
    /// valid design.
    pub fn best(&self) -> Option<&AccelCandidate> {
        self.best.as_ref()
    }

    /// Per-generation statistics so far.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// The Pareto archive, if this search runs with
    /// [`ObjectivePolicy::Pareto`].
    pub fn archive(&self) -> Option<&ParetoArchive> {
        self.archive.as_ref()
    }

    /// Consumes the state into a final result.
    ///
    /// # Errors
    ///
    /// [`NoValidDesign`] if no valid design was found over the whole
    /// budget (an envelope too small for the benchmark suite). Callers
    /// that treat this as fatal (`search_accelerator` and friends, per
    /// their documented contract) unwrap it; the CLI and the service map
    /// it to a clean diagnostic / error response instead of a panic.
    pub fn into_result(self) -> Result<AccelSearchResult, NoValidDesign> {
        Ok(AccelSearchResult {
            best: self.best.ok_or(NoValidDesign)?,
            history: self.history,
            evaluations: self.evaluations,
            cache_stats: self.cache_stats,
        })
    }
}

/// Initializes a search: builds the optimizer and encodes the warm-start
/// seeds (incumbent designs such as the envelope's source baseline).
/// Seeds that do not fit the envelope or cannot be expressed in the
/// encoding are silently skipped.
pub fn accel_search_init(
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
    seeds: &[Accelerator],
) -> AccelSearchState {
    let encoder = HardwareEncoder::new(constraint.clone(), cfg.scheme);
    let seed_thetas = seeds
        .iter()
        .filter_map(|design| {
            let theta = encoder.encode(design)?;
            encoder.decode(&theta)?;
            Some(theta)
        })
        .collect();
    AccelSearchState {
        config: *cfg,
        constraint: constraint.clone(),
        iteration: 0,
        seed_thetas,
        optimizer: SearchOptimizer::new(encoder.dim(), cfg),
        best: None,
        best_theta: None,
        history: Vec::with_capacity(cfg.iterations),
        evaluations: 0,
        archive: match cfg.objectives {
            ObjectivePolicy::Scalar => None,
            ObjectivePolicy::Pareto => Some(ParetoArchive::new()),
        },
        cache_stats: CacheStats::default(),
    }
}

/// Evaluates one decoded design against a benchmark suite through the
/// engine's shared cache: runs (or reuses) the mapping search per
/// network, derives the objective vector from the cost reports and the
/// area model, and scalarizes the reward ([`RewardKind::aggregate`] of
/// the per-network EDPs — the single collapse point of the stack).
/// Returns `None` if any network has an un-mappable layer on this
/// design.
pub fn evaluate_candidate(
    engine: &CoSearchEngine,
    model: &CostModel,
    accel: &Accelerator,
    networks: &[Network],
    mapping_cfg: &MappingSearchConfig,
    reward_kind: RewardKind,
) -> Option<CandidateEval> {
    // One fingerprint per candidate, shared by all its network evals.
    let design_fp = crate::mapping_search::design_fingerprint(accel, mapping_cfg);
    let mut per_network = Vec::with_capacity(networks.len());
    for net in networks {
        per_network.push(crate::mapping_search::network_mapping_search_memo(
            model,
            net,
            accel,
            mapping_cfg,
            engine.cache(),
            design_fp,
        )?);
    }
    let edps: Vec<f64> = per_network.iter().map(NetworkCost::edp).collect();
    let reward = reward_kind.aggregate(&edps);
    let area_um2 = AreaModel::default().area_mm2(accel) * 1e6;
    let objectives =
        ObjectiveVector::from_suite(&per_network, area_um2, ObjectiveVector::NO_ACCURACY);
    Some(CandidateEval {
        per_network,
        objectives,
        reward,
    })
}

/// Advances the search by one generation: sample, evaluate the population
/// on the engine's work-stealing pool, update the optimizer. Returns
/// `false` (without doing work) once the budget is exhausted.
pub fn accel_search_step(
    engine: &CoSearchEngine,
    model: &CostModel,
    networks: &[Network],
    state: &mut AccelSearchState,
) -> bool {
    assert!(!networks.is_empty(), "need at least one benchmark network");
    let cfg = state.config;
    let advanced = accel_search_step_with(state, |slots| {
        parallel_map(engine.threads(), slots, |_idx, (_, accel)| {
            evaluate_candidate(engine, model, accel, networks, &cfg.mapping, cfg.reward)
        })
    });
    if advanced {
        state.cache_stats = engine.cache_stats();
    }
    advanced
}

/// [`accel_search_step`] with a caller-supplied population evaluator —
/// the seam the distributed coordinator (`crate::distributed`) plugs
/// into. The sampling, scoring and optimizer-update logic here is the
/// *entire* search semantics; `evaluate` only decides *where* the
/// candidates are costed (local pool, remote shards, ...).
///
/// `evaluate` receives the generation's decoded candidates in slot order
/// and must return one result per candidate **in the same order**.
/// Because each candidate's evaluation is a pure function of its content
/// (content-derived inner seeds, content-addressed caching), any
/// order-preserving evaluator produces a bit-identical search
/// trajectory. The caller owns `state.cache_stats` bookkeeping (a remote
/// evaluator has no local cache to read).
pub fn accel_search_step_with<F>(state: &mut AccelSearchState, evaluate: F) -> bool
where
    F: FnOnce(&[(Vec<f64>, Accelerator)]) -> Vec<Option<CandidateEval>>,
{
    let Some(sampled) = accel_sample_generation(state) else {
        return false;
    };
    // Evaluate the population. Inner seeds are content-derived inside
    // `network_mapping_search_memo`, so results are independent of slot
    // order, thread count, cache warmth — and of which process ran them.
    let results = evaluate(&sampled.slots);
    accel_commit_generation(state, sampled, results);
    true
}

/// One sampled-but-not-yet-committed generation: the decoded population
/// in slot order, plus the decode-rejected draws that must still be
/// reported to the optimizer as infeasible at commit time.
///
/// Produced by [`accel_sample_generation`], consumed by
/// [`accel_commit_generation`]; [`accel_search_step_with`] is exactly
/// the two in sequence around one evaluator call. The split is the
/// optimizer fork/rollback seam the overlapped coordinator
/// (`crate::distributed`) builds on: a speculative next generation is
/// sampled from a *cloned* state fed a predicted commit, and reusing its
/// evaluations is gated on whole-struct equality with the real sample —
/// candidates are pure functions of their content, so equal samples mean
/// equal results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledGeneration {
    /// The iteration this generation was sampled for.
    pub iteration: usize,
    /// Decoded candidates in slot order.
    pub slots: Vec<(Vec<f64>, Accelerator)>,
    /// Draws the encoder rejected; they score +inf at commit.
    pub rejected: Vec<Vec<f64>>,
}

/// The sampling half of [`accel_search_step_with`]: consumes the
/// optimizer's RNG (and, on iteration 0, the warm-start seeds) to draw
/// one generation. Returns `None` — without touching any state — once
/// the budget is exhausted.
pub fn accel_sample_generation(state: &mut AccelSearchState) -> Option<SampledGeneration> {
    if state.is_done() {
        return None;
    }
    let cfg = state.config;
    let iteration = state.iteration;
    let encoder = HardwareEncoder::new(state.constraint.clone(), cfg.scheme);

    // Sample the generation (sequential: the optimizer is stateful).
    let mut slots: Vec<(Vec<f64>, Accelerator)> = Vec::with_capacity(cfg.population);
    let mut rejected: Vec<Vec<f64>> = Vec::new();
    if iteration == 0 {
        // Warm-start: incumbent designs join the first generation.
        for theta in std::mem::take(&mut state.seed_thetas) {
            if let Some(decoded) = encoder.decode(&theta) {
                slots.push((theta, decoded));
            }
        }
    }
    while slots.len() < cfg.population {
        let mut found = false;
        for _ in 0..cfg.resample_limit {
            let theta = state.optimizer.ask();
            if let Some(accel) = encoder.decode(&theta) {
                slots.push((theta, accel));
                found = true;
                break;
            } else {
                rejected.push(theta);
            }
        }
        if !found {
            break; // envelope nearly un-satisfiable; keep what we have
        }
    }
    Some(SampledGeneration {
        iteration,
        slots,
        rejected,
    })
}

/// The commit half of [`accel_search_step_with`]: folds one result per
/// sampled candidate (slot order) into the state — evaluation counters,
/// Pareto archive, incumbent, the optimizer's `tell`, history — and
/// advances the iteration counter. The predecessor generation's tell has
/// necessarily happened by construction: the only way to obtain a
/// `SampledGeneration` for iteration N is from a state whose iteration
/// counter already reached N.
pub fn accel_commit_generation(
    state: &mut AccelSearchState,
    sampled: SampledGeneration,
    results: Vec<Option<CandidateEval>>,
) {
    let cfg = state.config;
    let SampledGeneration {
        iteration,
        slots,
        rejected,
    } = sampled;
    assert_eq!(
        results.len(),
        slots.len(),
        "evaluator must return one result per candidate"
    );
    assert_eq!(
        iteration, state.iteration,
        "a sampled generation commits against the state that sampled it"
    );

    // Collect scores in slot order; infeasible candidates score +inf,
    // rejected decodes are also reported to the optimizer as infeasible.
    // `rewards` holds the generation's *aggregated* scalar rewards (one
    // per valid candidate), not per-network EDPs — those live inside
    // each candidate's `per_network` reports.
    let mut scored: Vec<(Vec<f64>, f64)> = Vec::with_capacity(slots.len() + rejected.len());
    let mut rewards = Vec::new();
    for (slot, ((theta, accel), result)) in slots.into_iter().zip(results).enumerate() {
        match result {
            Some(eval) => {
                state.evaluations += 1;
                rewards.push(eval.reward);
                if let Some(archive) = state.archive.as_mut() {
                    // Global candidate order: this fold runs in slot
                    // order in every execution mode (local pool,
                    // distributed merge, resume), so the archive sees
                    // the identical offer sequence everywhere.
                    let candidate_index = iteration as u64 * cfg.population as u64 + slot as u64;
                    archive.offer(candidate_index, eval.objectives, &accel);
                }
                if state.best.as_ref().is_none_or(|b| eval.reward < b.reward) {
                    state.best = Some(AccelCandidate {
                        accelerator: accel,
                        per_network: eval.per_network,
                        objectives: eval.objectives,
                        reward: eval.reward,
                    });
                    state.best_theta = Some(theta.clone());
                }
                scored.push((theta, eval.reward));
            }
            None => scored.push((theta, f64::INFINITY)),
        }
    }
    for theta in rejected {
        scored.push((theta, f64::INFINITY));
    }
    // Light elitism: the best-so-far vector re-enters the distribution
    // update on alternating generations — enough to keep the attractor
    // alive without collapsing exploration onto the warm-start seed.
    if iteration % 2 == 1 {
        if let (Some(theta), Some(b)) = (&state.best_theta, &state.best) {
            scored.push((theta.clone(), b.reward));
        }
    }
    state.optimizer.tell(&scored);

    state.history.push(IterationStats {
        iteration,
        mean_edp: if rewards.is_empty() {
            f64::INFINITY
        } else {
            rewards.iter().sum::<f64>() / rewards.len() as f64
        },
        best_edp: state.best.as_ref().map_or(f64::INFINITY, |b| b.reward),
        valid: rewards.len(),
    });
    state.iteration += 1;
}

/// Runs the NAAS outer loop: search accelerator + mapping within a
/// resource envelope for a set of benchmark networks.
///
/// # Panics
///
/// Panics if `networks` is empty, or if not a single valid design was
/// found over the entire budget (which indicates an envelope too small
/// for the benchmark suite).
pub fn search_accelerator(
    model: &CostModel,
    networks: &[Network],
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
) -> AccelSearchResult {
    search_accelerator_seeded(model, networks, constraint, cfg, &[])
}

/// [`search_accelerator`] with warm-start seeds: incumbent designs (for
/// instance the envelope's source baseline) are encoded into the first
/// generation, so the search never loses to a design it was given — the
/// data-driven loop starts from the human design and improves it.
///
/// # Panics
///
/// Same conditions as [`search_accelerator`].
pub fn search_accelerator_seeded(
    model: &CostModel,
    networks: &[Network],
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
    seeds: &[Accelerator],
) -> AccelSearchResult {
    let engine = CoSearchEngine::new(cfg.threads);
    search_accelerator_with(&engine, model, networks, constraint, cfg, seeds, None)
}

/// The fully-general entry point: run (or continue) a search on a caller
/// -supplied engine, optionally checkpointing. Sharing one engine across
/// several searches shares the mapping cache between them; passing a
/// [`CheckpointPolicy`] snapshots the [`AccelSearchState`] on its cadence
/// and always once more when the search completes.
///
/// # Panics
///
/// Same conditions as [`search_accelerator`]; additionally panics if a
/// due checkpoint cannot be written (a search that silently stops being
/// resumable would be worse).
pub fn search_accelerator_with(
    engine: &CoSearchEngine,
    model: &CostModel,
    networks: &[Network],
    constraint: &ResourceConstraint,
    cfg: &AccelSearchConfig,
    seeds: &[Accelerator],
    checkpoint: Option<&CheckpointPolicy>,
) -> AccelSearchResult {
    assert!(!networks.is_empty(), "need at least one benchmark network");
    let mut state = accel_search_init(constraint, cfg, seeds);
    run_to_completion(engine, model, networks, &mut state, checkpoint);
    state.into_result().unwrap_or_else(|e| panic!("{e}"))
}

/// Continues a checkpointed search to completion. The caller must supply
/// the same benchmark suite the original run used (the state embeds
/// everything else). Resuming produces the identical final result an
/// uninterrupted run would have.
///
/// # Panics
///
/// Same conditions as [`search_accelerator_with`].
pub fn resume_accel_search(
    engine: &CoSearchEngine,
    model: &CostModel,
    networks: &[Network],
    mut state: AccelSearchState,
    checkpoint: Option<&CheckpointPolicy>,
) -> AccelSearchResult {
    run_to_completion(engine, model, networks, &mut state, checkpoint);
    state.into_result().unwrap_or_else(|e| panic!("{e}"))
}

fn run_to_completion(
    engine: &CoSearchEngine,
    model: &CostModel,
    networks: &[Network],
    state: &mut AccelSearchState,
    checkpoint: Option<&CheckpointPolicy>,
) {
    while accel_search_step(engine, model, networks, state) {
        if let Some(policy) = checkpoint {
            if policy.due_after(state.iteration - 1) || state.is_done() {
                naas_engine::checkpoint::save(&policy.path, state)
                    .unwrap_or_else(|e| panic!("cannot write checkpoint: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    fn tiny_net() -> Network {
        models::cifar_resnet20()
    }

    #[test]
    fn search_returns_valid_design_within_envelope() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let result = search_accelerator(
            &model,
            &[tiny_net()],
            &envelope,
            &AccelSearchConfig::quick(1),
        );
        assert!(envelope.admits(&result.best.accelerator).is_ok());
        assert!(result.best.reward > 0.0);
        assert_eq!(result.history.len(), 3);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = AccelSearchConfig::quick(77);
        let a = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        let b = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        assert_eq!(a.best.accelerator, b.best.accelerator);
        assert_eq!(a.best.reward, b.best.reward);
    }

    #[test]
    fn best_edp_is_monotone_in_history() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::nvdla_256());
        let result = search_accelerator(
            &model,
            &[tiny_net()],
            &envelope,
            &AccelSearchConfig::quick(5),
        );
        for w in result.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn multi_network_reward_is_geomean() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::nvdla_256());
        let nets = [tiny_net(), models::nasaic_cifar_net()];
        let result = search_accelerator(&model, &nets, &envelope, &AccelSearchConfig::quick(2));
        let edps: Vec<f64> = result.best.per_network.iter().map(|c| c.edp()).collect();
        assert_eq!(edps.len(), 2);
        assert!(
            (result.best.reward - crate::reward::geomean(&edps)).abs() / result.best.reward < 1e-9
        );
    }

    #[test]
    fn random_strategy_runs() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = AccelSearchConfig {
            strategy: SearchStrategy::Random,
            ..AccelSearchConfig::quick(3)
        };
        let result = search_accelerator(&model, &[tiny_net()], &envelope, &cfg);
        assert!(result.best.reward.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn empty_benchmarks_rejected() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let _ = search_accelerator(&model, &[], &envelope, &AccelSearchConfig::quick(1));
    }

    #[test]
    fn seeded_search_never_loses_to_its_seed() {
        let model = CostModel::new();
        let baseline = baselines::edge_tpu();
        let envelope = ResourceConstraint::from_design(&baseline);
        let net = tiny_net();
        let cfg = AccelSearchConfig::quick(13);
        let result = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &cfg,
            std::slice::from_ref(&baseline),
        );
        // The seed design was evaluated in generation 0; because inner
        // seeds are content-derived, re-evaluating it on a fresh engine
        // reproduces that evaluation exactly, so the final best can only
        // match or beat it.
        let fresh = CoSearchEngine::single_threaded();
        let seed_reward = evaluate_candidate(
            &fresh,
            &model,
            &baseline,
            std::slice::from_ref(&net),
            &cfg.mapping,
            cfg.reward,
        )
        .expect("edge tpu maps the net")
        .reward;
        assert!(
            result.best.reward <= seed_reward,
            "seeded search lost to its seed: {} vs {}",
            result.best.reward,
            seed_reward
        );
    }

    #[test]
    fn exhausted_budget_without_design_is_an_error_not_a_panic() {
        // Regression: `naas-search run` used to abort with a panic when a
        // search found no valid design. An envelope too small to hold any
        // decodable candidate must surface `NoValidDesign` instead.
        let model = CostModel::new();
        let envelope = ResourceConstraint::new("hopeless", 1, 1, 1e-3, 1e-3);
        let cfg = AccelSearchConfig {
            resample_limit: 3,
            ..AccelSearchConfig::quick(9)
        };
        let engine = CoSearchEngine::single_threaded();
        let mut state = accel_search_init(&envelope, &cfg, &[]);
        while accel_search_step(&engine, &model, &[tiny_net()], &mut state) {}
        assert!(state.best().is_none());
        assert_eq!(state.into_result().unwrap_err(), NoValidDesign);
    }

    #[test]
    fn shared_engine_reuses_cache_across_searches() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let net = tiny_net();
        let cfg = AccelSearchConfig::quick(21);
        let engine = CoSearchEngine::new(2);
        let cold = search_accelerator_with(
            &engine,
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &cfg,
            &[],
            None,
        );
        let misses_after_cold = engine.cache_stats().misses;
        let warm = search_accelerator_with(
            &engine,
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &cfg,
            &[],
            None,
        );
        // Same seed ⇒ same candidates ⇒ the second run is answered
        // entirely from cache, with identical results.
        assert_eq!(warm.best.accelerator, cold.best.accelerator);
        assert_eq!(warm.best.reward, cold.best.reward);
        assert_eq!(warm.history, cold.history);
        assert_eq!(engine.cache_stats().misses, misses_after_cold);
    }

    #[test]
    fn stepwise_and_oneshot_agree() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::nvdla_256());
        let net = tiny_net();
        let cfg = AccelSearchConfig::quick(31);

        let oneshot = search_accelerator(&model, std::slice::from_ref(&net), &envelope, &cfg);

        let engine = CoSearchEngine::new(cfg.threads);
        let mut state = accel_search_init(&envelope, &cfg, &[]);
        let mut steps = 0;
        while accel_search_step(&engine, &model, std::slice::from_ref(&net), &mut state) {
            steps += 1;
        }
        assert_eq!(steps, cfg.iterations);
        let stepped = state.into_result().expect("search found a design");
        assert_eq!(stepped.best.accelerator, oneshot.best.accelerator);
        assert_eq!(stepped.history, oneshot.history);
        assert_eq!(stepped.evaluations, oneshot.evaluations);
    }
}
