//! First-order silicon-area model — an extension beyond the paper.
//!
//! The paper constrains searches by (#PE, on-chip SRAM, bandwidth)
//! triples. A natural alternative fairness metric is *silicon area*:
//! trading MACs for SRAM at iso-area is exactly the kind of freedom a
//! connectivity-searching framework can exploit. This module provides a
//! documented first-order estimate (per-PE MAC+control area, SRAM bit
//! density, NoC wiring overhead proportional to array perimeter links) and
//! an area-based envelope check, used by the `ablation_reward` bench and
//! available to downstream users.
//!
//! Default coefficients are 16 nm-class estimates:
//! * 8-bit MAC + pipeline + control: ≈ 600 µm² per PE;
//! * SRAM: ≈ 0.35 µm² per bit (high-density single-port macro);
//! * NoC/link overhead: ≈ 150 µm² per PE-to-parent link.
//!
//! Only *ratios* across candidate designs matter for search fairness, as
//! with the energy ladder.

use crate::accelerator::Accelerator;
use serde::{Deserialize, Serialize};

/// Area-model coefficients in µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one PE's datapath and control, µm².
    pub pe_um2: f64,
    /// Area per SRAM bit, µm².
    pub sram_um2_per_bit: f64,
    /// Area per NoC link (one per PE plus one per cluster boundary), µm².
    pub link_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            pe_um2: 600.0,
            sram_um2_per_bit: 0.35,
            link_um2: 150.0,
        }
    }
}

impl AreaModel {
    /// Estimated silicon area of a design in mm².
    ///
    /// ```
    /// use naas_accel::{area::AreaModel, baselines};
    /// let m = AreaModel::default();
    /// let small = m.area_mm2(&baselines::shidiannao());
    /// let big = m.area_mm2(&baselines::edge_tpu());
    /// assert!(big > 10.0 * small);
    /// ```
    pub fn area_mm2(&self, design: &Accelerator) -> f64 {
        let pes = design.pe_count() as f64;
        let sram_bits = (design.total_onchip_bytes() * 8) as f64;
        // One link per PE towards its cluster, one per cluster towards L2;
        // cluster count is the product of all but the innermost array dim.
        let sizes = design.connectivity().sizes();
        let clusters: u64 = sizes[..sizes.len().saturating_sub(1)].iter().product();
        let links = pes + clusters.max(1) as f64;
        (pes * self.pe_um2 + sram_bits * self.sram_um2_per_bit + links * self.link_um2) / 1e6
    }

    /// `true` if `design` fits within `budget_mm2`.
    pub fn fits(&self, design: &Accelerator, budget_mm2: f64) -> bool {
        self.area_mm2(design) <= budget_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;

    #[test]
    fn baseline_areas_are_plausible() {
        let m = AreaModel::default();
        // Eyeriss-class: 168 PEs + ~192 KB SRAM → O(1) mm² at 16 nm.
        let eyeriss = m.area_mm2(&baselines::eyeriss());
        assert!(eyeriss > 0.2 && eyeriss < 5.0, "got {eyeriss} mm²");
        // EdgeTPU-class: 4096 PEs + ~4.5 MiB SRAM → O(10) mm².
        let tpu = m.area_mm2(&baselines::edge_tpu());
        assert!(tpu > 5.0 && tpu < 50.0, "got {tpu} mm²");
    }

    #[test]
    fn area_monotone_in_pes_and_sram() {
        let m = AreaModel::default();
        assert!(m.area_mm2(&baselines::nvdla_1024()) > m.area_mm2(&baselines::nvdla_256()));
    }

    #[test]
    fn fits_respects_budget() {
        let m = AreaModel::default();
        let d = baselines::shidiannao();
        let a = m.area_mm2(&d);
        assert!(m.fits(&d, a * 1.01));
        assert!(!m.fits(&d, a * 0.99));
    }

    #[test]
    fn custom_coefficients_scale_linearly() {
        let base = AreaModel::default();
        let double = AreaModel {
            pe_um2: base.pe_um2 * 2.0,
            sram_um2_per_bit: base.sram_um2_per_bit * 2.0,
            link_um2: base.link_um2 * 2.0,
        };
        let d = baselines::eyeriss();
        let ratio = double.area_mm2(&d) / base.area_mm2(&d);
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
