//! Architectural sizing: the numerical hardware knobs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The numerical ("sizing") half of an accelerator description:
/// private scratch-pad (L1) bytes per PE, shared scratch-pad (L2) bytes,
/// and NoC/DRAM bandwidth in bytes per cycle (paper §II-A0a, class 1).
///
/// The PE count is *not* stored here — it is implied by the array shape in
/// [`crate::Connectivity`]; sizing-only search frameworks treat it as a
/// free scalar, which is exactly the limitation NAAS lifts.
///
/// ```
/// use naas_accel::ArchitecturalSizing;
/// let s = ArchitecturalSizing::new(512, 108 * 1024, 16.0, 4.0);
/// assert_eq!(s.l1_bytes(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchitecturalSizing {
    l1_bytes: u64,
    l2_bytes: u64,
    noc_bandwidth: f64,
    dram_bandwidth: f64,
}

impl ArchitecturalSizing {
    /// Creates a sizing description.
    ///
    /// # Panics
    ///
    /// Panics if any value is zero/non-positive — a design with no buffer
    /// or no bandwidth cannot execute any layer.
    pub fn new(l1_bytes: u64, l2_bytes: u64, noc_bandwidth: f64, dram_bandwidth: f64) -> Self {
        assert!(l1_bytes > 0, "l1 size must be positive");
        assert!(l2_bytes > 0, "l2 size must be positive");
        assert!(noc_bandwidth > 0.0, "noc bandwidth must be positive");
        assert!(dram_bandwidth > 0.0, "dram bandwidth must be positive");
        ArchitecturalSizing {
            l1_bytes,
            l2_bytes,
            noc_bandwidth,
            dram_bandwidth,
        }
    }

    /// Private (per-PE) scratch-pad capacity in bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.l1_bytes
    }

    /// Shared (global) scratch-pad capacity in bytes.
    pub fn l2_bytes(&self) -> u64 {
        self.l2_bytes
    }

    /// Network-on-chip bandwidth between L2 and the PE array, bytes/cycle.
    pub fn noc_bandwidth(&self) -> f64 {
        self.noc_bandwidth
    }

    /// Off-chip (DRAM) bandwidth, bytes/cycle.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bandwidth
    }

    /// Returns a copy with a different L1 capacity.
    pub fn with_l1_bytes(mut self, l1_bytes: u64) -> Self {
        assert!(l1_bytes > 0, "l1 size must be positive");
        self.l1_bytes = l1_bytes;
        self
    }

    /// Returns a copy with a different L2 capacity.
    pub fn with_l2_bytes(mut self, l2_bytes: u64) -> Self {
        assert!(l2_bytes > 0, "l2 size must be positive");
        self.l2_bytes = l2_bytes;
        self
    }
}

impl fmt::Display for ArchitecturalSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {} B | L2 {:.0} KB | NoC {:.0} B/cyc | DRAM {:.0} B/cyc",
            self.l1_bytes,
            self.l2_bytes as f64 / 1024.0,
            self.noc_bandwidth,
            self.dram_bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let s = ArchitecturalSizing::new(256, 1 << 20, 32.0, 8.0);
        assert_eq!(s.l1_bytes(), 256);
        assert_eq!(s.l2_bytes(), 1 << 20);
        assert_eq!(s.noc_bandwidth(), 32.0);
        assert_eq!(s.dram_bandwidth(), 8.0);
    }

    #[test]
    fn with_updates_do_not_touch_other_fields() {
        let s = ArchitecturalSizing::new(256, 1024, 32.0, 8.0)
            .with_l1_bytes(512)
            .with_l2_bytes(2048);
        assert_eq!(s.l1_bytes(), 512);
        assert_eq!(s.l2_bytes(), 2048);
        assert_eq!(s.noc_bandwidth(), 32.0);
    }

    #[test]
    #[should_panic(expected = "l1 size")]
    fn zero_l1_rejected() {
        let _ = ArchitecturalSizing::new(0, 1024, 1.0, 1.0);
    }

    #[test]
    fn display_mentions_units() {
        let s = ArchitecturalSizing::new(512, 108 * 1024, 16.0, 4.0).to_string();
        assert!(s.contains("108 KB"));
        assert!(s.contains("512 B"));
    }
}
