//! Complete accelerator design points.

use crate::connectivity::Connectivity;
use crate::sizing::ArchitecturalSizing;
use naas_ir::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing or validating an accelerator design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// The array rank was not 1, 2 or 3.
    BadArrayRank(usize),
    /// `sizes` and `parallel` had different lengths.
    RankMismatch {
        /// Length of the sizes vector.
        sizes: usize,
        /// Length of the parallel-dims vector.
        parallel: usize,
    },
    /// An array dimension had zero clusters.
    ZeroArrayDim,
    /// The same tensor dimension was mapped to two array axes.
    DuplicateParallelDim(Dim),
    /// The design exceeds a resource envelope.
    ExceedsResources(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::BadArrayRank(r) => {
                write!(f, "array rank must be 1, 2 or 3, got {r}")
            }
            DesignError::RankMismatch { sizes, parallel } => write!(
                f,
                "array has {sizes} sizes but {parallel} parallel dimensions"
            ),
            DesignError::ZeroArrayDim => write!(f, "array dimension sizes must be nonzero"),
            DesignError::DuplicateParallelDim(d) => {
                write!(f, "tensor dimension {d} mapped to more than one array axis")
            }
            DesignError::ExceedsResources(why) => write!(f, "design exceeds resources: {why}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A complete accelerator design point: sizing + connectivity
/// (the decoded form of the paper's hardware encoding vector, Fig. 2).
///
/// ```
/// use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity};
/// use naas_ir::Dim;
///
/// let design = Accelerator::new(
///     "demo",
///     ArchitecturalSizing::new(512, 108 * 1024, 16.0, 4.0),
///     Connectivity::grid(12, 14, Dim::R, Dim::Y)?,
/// );
/// assert_eq!(design.pe_count(), 168);
/// assert_eq!(design.total_onchip_bytes(), 108 * 1024 + 168 * 512);
/// # Ok::<(), naas_accel::DesignError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    name: String,
    sizing: ArchitecturalSizing,
    connectivity: Connectivity,
}

impl Accelerator {
    /// Creates a design point from its two halves.
    pub fn new(
        name: impl Into<String>,
        sizing: ArchitecturalSizing,
        connectivity: Connectivity,
    ) -> Self {
        Accelerator {
            name: name.into(),
            sizing,
            connectivity,
        }
    }

    /// Design name (baseline designs use their canonical names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architectural sizing.
    pub fn sizing(&self) -> &ArchitecturalSizing {
        &self.sizing
    }

    /// Array connectivity.
    pub fn connectivity(&self) -> &Connectivity {
        &self.connectivity
    }

    /// Total processing elements.
    pub fn pe_count(&self) -> u64 {
        self.connectivity.pe_count()
    }

    /// Total on-chip SRAM: shared L2 plus the private L1 of every PE.
    pub fn total_onchip_bytes(&self) -> u64 {
        self.sizing.l2_bytes() + self.pe_count() * self.sizing.l1_bytes()
    }

    /// Renders the Fig.-7-style design card.
    pub fn design_card(&self) -> String {
        format!(
            "{}\n  Array Size : {}\n  Dataflow   : {}\n  L1 Buffer  : {} B\n  L2 Buffer  : {:.0} KB\n  NoC BW     : {:.0} B/cyc\n  #PEs       : {}",
            self.name,
            self.connectivity.size_label(),
            self.connectivity.dataflow_label(),
            self.sizing.l1_bytes(),
            self.sizing.l2_bytes() as f64 / 1024.0,
            self.sizing.noc_bandwidth(),
            self.pe_count(),
        )
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PEs, {}, {}",
            self.name,
            self.pe_count(),
            self.connectivity,
            self.sizing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Accelerator {
        Accelerator::new(
            "demo",
            ArchitecturalSizing::new(512, 108 * 1024, 16.0, 4.0),
            Connectivity::grid(12, 14, Dim::R, Dim::Y).unwrap(),
        )
    }

    #[test]
    fn totals() {
        let a = demo();
        assert_eq!(a.pe_count(), 168);
        assert_eq!(a.total_onchip_bytes(), 108 * 1024 + 168 * 512);
    }

    #[test]
    fn design_card_has_all_fields() {
        let card = demo().design_card();
        for needle in ["Array Size", "Dataflow", "L1 Buffer", "L2 Buffer", "#PEs"] {
            assert!(card.contains(needle), "missing {needle}");
        }
        assert!(card.contains("12x14"));
        assert!(card.contains("R-Y' Parallel"));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DesignError::DuplicateParallelDim(Dim::C).to_string();
        assert!(e.contains('C'));
        let e = DesignError::BadArrayRank(4).to_string();
        assert!(e.contains('4'));
    }
}
