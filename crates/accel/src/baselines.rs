//! The five baseline accelerator designs the paper compares against.
//!
//! Parameters follow the published designs; where a publication gives a
//! range or leaves a knob unspecified (bandwidths in particular) we pick a
//! documented representative value. Only the *ratios* between designs
//! matter for the reproduction, since every experiment normalizes to the
//! baseline's own performance inside its own envelope.
//!
//! | design | array | dataflow (parallel dims) | L1/PE | L2 | NoC B/cyc |
//! |---|---|---|---|---|---|
//! | Eyeriss | 12×14 | row-stationary → `R`,`Y'` | 512 B | 108 KB | 16 |
//! | NVDLA-256 | 16×16 | weight-stationary → `C`,`K` | 64 B | 256 KB | 32 |
//! | NVDLA-1024 | 32×32 | weight-stationary → `C`,`K` | 64 B | 512 KB | 64 |
//! | EdgeTPU | 64×64 | systolic matmul → `C`,`K` | 128 B | 4 MiB | 128 |
//! | ShiDianNao | 8×8 | output-stationary → `Y'`,`X'` | 64 B | 288 KB | 16 |

use crate::accelerator::Accelerator;
use crate::connectivity::Connectivity;
use crate::resource::ResourceConstraint;
use crate::sizing::ArchitecturalSizing;
use naas_ir::Dim;

/// Eyeriss [Chen et al., ISSCC/JSSC 2016]: 12×14 row-stationary array.
///
/// Row-stationary distributes kernel rows (`R`) across PE rows and output
/// rows (`Y'`) across the diagonal; we model it as an `R`×`Y'` spatial
/// mapping, the closest 2-parallel-dim rendering of the dataflow.
pub fn eyeriss() -> Accelerator {
    Accelerator::new(
        "Eyeriss",
        ArchitecturalSizing::new(512, 108 * 1024, 16.0, 4.0),
        Connectivity::grid(12, 14, Dim::R, Dim::Y).expect("static baseline is valid"),
    )
}

/// NVDLA [NVIDIA 2017] at a configurable MAC count (the paper uses 256 and
/// 1024): a `√n`×`√n` array computing input-channel × output-channel
/// blocks (weight-stationary `C`,`K` parallelism).
///
/// Returns `None` for any PE count other than 256 or 1024 — the two
/// published configurations the paper evaluates. PE counts reach this
/// constructor from library users and scenario/envelope inputs, so an
/// unknown configuration is an answerable question, not a programming
/// error.
pub fn nvdla(pes: u64) -> Option<Accelerator> {
    let (side, l2, noc) = match pes {
        256 => (16, 256 * 1024, 32.0),
        1024 => (32, 512 * 1024, 64.0),
        _ => return None,
    };
    Some(Accelerator::new(
        format!("NVDLA-{pes}"),
        ArchitecturalSizing::new(64, l2, noc, noc / 4.0),
        Connectivity::grid(side, side, Dim::C, Dim::K).expect("static baseline is valid"),
    ))
}

/// EdgeTPU-class design: a 64×64 systolic matrix unit with a multi-MiB
/// unified buffer, modeled as `C`,`K` parallelism (im2col matmul).
pub fn edge_tpu() -> Accelerator {
    Accelerator::new(
        "EdgeTPU",
        ArchitecturalSizing::new(128, 4 * 1024 * 1024, 128.0, 32.0),
        Connectivity::grid(64, 64, Dim::C, Dim::K).expect("static baseline is valid"),
    )
}

/// ShiDianNao [Du et al., ISCA 2015]: an 8×8 output-stationary array where
/// each PE owns one output pixel (`Y'`,`X'` parallelism) and activations
/// are shifted between neighbours.
pub fn shidiannao() -> Accelerator {
    Accelerator::new(
        "ShiDianNao",
        ArchitecturalSizing::new(64, 288 * 1024, 16.0, 4.0),
        Connectivity::grid(8, 8, Dim::Y, Dim::X).expect("static baseline is valid"),
    )
}

/// The two NVDLA configurations the paper evaluates, as infallible
/// constructors for call sites with a statically-known PE count.
pub fn nvdla_256() -> Accelerator {
    nvdla(256).expect("256 is a published configuration")
}

/// See [`nvdla_256`].
pub fn nvdla_1024() -> Accelerator {
    nvdla(1024).expect("1024 is a published configuration")
}

/// All five baseline designs in the paper's order.
pub fn all() -> Vec<Accelerator> {
    vec![
        edge_tpu(),
        nvdla_1024(),
        nvdla_256(),
        eyeriss(),
        shidiannao(),
    ]
}

/// The five deployment scenarios of §III-A0b: a resource envelope plus the
/// benchmark-set tag (`true` = large-model set, `false` = mobile set).
pub fn deployment_scenarios() -> Vec<(ResourceConstraint, bool)> {
    vec![
        (ResourceConstraint::from_design(&edge_tpu()), true),
        (ResourceConstraint::from_design(&nvdla_1024()), true),
        (ResourceConstraint::from_design(&nvdla_256()), false),
        (ResourceConstraint::from_design(&eyeriss()), false),
        (ResourceConstraint::from_design(&shidiannao()), false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_counts_match_published_designs() {
        assert_eq!(eyeriss().pe_count(), 168);
        assert_eq!(nvdla_256().pe_count(), 256);
        assert_eq!(nvdla_1024().pe_count(), 1024);
        assert_eq!(edge_tpu().pe_count(), 4096);
        assert_eq!(shidiannao().pe_count(), 64);
    }

    #[test]
    fn dataflows_match_published_designs() {
        assert_eq!(eyeriss().connectivity().dataflow_label(), "R-Y' Parallel");
        assert_eq!(nvdla_256().connectivity().dataflow_label(), "C-K Parallel");
        assert_eq!(
            shidiannao().connectivity().dataflow_label(),
            "Y'-X' Parallel"
        );
    }

    #[test]
    fn all_returns_five_unique_designs() {
        let designs = all();
        assert_eq!(designs.len(), 5);
        let mut names: Vec<&str> = designs.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn scenarios_partition_large_and_mobile() {
        let scenarios = deployment_scenarios();
        assert_eq!(scenarios.iter().filter(|(_, large)| *large).count(), 2);
        assert_eq!(scenarios.iter().filter(|(_, large)| !*large).count(), 3);
    }

    #[test]
    fn nvdla_rejects_unknown_config_without_panicking() {
        assert!(nvdla(512).is_none());
        assert!(nvdla(0).is_none());
        assert_eq!(nvdla(256).unwrap().pe_count(), 256);
        assert_eq!(nvdla(1024).unwrap().pe_count(), 1024);
    }

    #[test]
    fn every_baseline_fits_its_own_envelope() {
        for d in all() {
            let c = ResourceConstraint::from_design(&d);
            assert!(
                c.admits(&d).is_ok(),
                "{} violates its own envelope",
                d.name()
            );
        }
    }
}
