//! Resource envelopes: the fairness constraint of every NAAS experiment.

use crate::accelerator::{Accelerator, DesignError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A computation-resource envelope (paper §III-A0a): the maximum #PEs,
/// maximum *total* on-chip memory (shared L2 plus all private L1), and the
/// NoC bandwidth available to any design competing under this constraint.
///
/// NAAS is always conducted *within* a baseline's envelope so that wins
/// come from better architecture/mapping, not from more silicon.
///
/// ```
/// use naas_accel::{baselines, ResourceConstraint};
/// let c = ResourceConstraint::from_design(&baselines::nvdla_256());
/// assert_eq!(c.max_pes(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceConstraint {
    name: String,
    max_pes: u64,
    max_onchip_bytes: u64,
    noc_bandwidth: f64,
    dram_bandwidth: f64,
}

impl ResourceConstraint {
    /// Creates an envelope with explicit limits.
    ///
    /// # Panics
    ///
    /// Panics if any limit is zero/non-positive.
    pub fn new(
        name: impl Into<String>,
        max_pes: u64,
        max_onchip_bytes: u64,
        noc_bandwidth: f64,
        dram_bandwidth: f64,
    ) -> Self {
        assert!(max_pes > 0, "pe limit must be positive");
        assert!(max_onchip_bytes > 0, "memory limit must be positive");
        assert!(noc_bandwidth > 0.0, "noc bandwidth must be positive");
        assert!(dram_bandwidth > 0.0, "dram bandwidth must be positive");
        ResourceConstraint {
            name: name.into(),
            max_pes,
            max_onchip_bytes,
            noc_bandwidth,
            dram_bandwidth,
        }
    }

    /// Derives the envelope spanned by an existing design — exactly how
    /// the paper derives the EdgeTPU/NVDLA/Eyeriss/ShiDianNao constraints.
    pub fn from_design(design: &Accelerator) -> Self {
        ResourceConstraint::new(
            format!("{}_resources", design.name()),
            design.pe_count(),
            design.total_onchip_bytes(),
            design.sizing().noc_bandwidth(),
            design.sizing().dram_bandwidth(),
        )
    }

    /// Envelope name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of PEs.
    pub fn max_pes(&self) -> u64 {
        self.max_pes
    }

    /// Maximum total on-chip SRAM in bytes (L2 + Σ L1).
    pub fn max_onchip_bytes(&self) -> u64 {
        self.max_onchip_bytes
    }

    /// NoC bandwidth ceiling in bytes per cycle.
    pub fn noc_bandwidth(&self) -> f64 {
        self.noc_bandwidth
    }

    /// DRAM bandwidth in bytes per cycle (fixed per deployment scenario).
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bandwidth
    }

    /// Checks whether a design fits inside this envelope.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::ExceedsResources`] naming the violated limit.
    pub fn admits(&self, design: &Accelerator) -> Result<(), DesignError> {
        if design.pe_count() > self.max_pes {
            return Err(DesignError::ExceedsResources(format!(
                "{} PEs > limit {}",
                design.pe_count(),
                self.max_pes
            )));
        }
        if design.total_onchip_bytes() > self.max_onchip_bytes {
            return Err(DesignError::ExceedsResources(format!(
                "{} B on-chip > limit {} B",
                design.total_onchip_bytes(),
                self.max_onchip_bytes
            )));
        }
        if design.sizing().noc_bandwidth() > self.noc_bandwidth + 1e-9 {
            return Err(DesignError::ExceedsResources(format!(
                "{} B/cyc NoC > limit {} B/cyc",
                design.sizing().noc_bandwidth(),
                self.noc_bandwidth
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ResourceConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ≤{} PEs, ≤{:.0} KB on-chip, ≤{:.0} B/cyc NoC",
            self.name,
            self.max_pes,
            self.max_onchip_bytes as f64 / 1024.0,
            self.noc_bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;

    #[test]
    fn from_design_matches_design_totals() {
        let d = baselines::eyeriss();
        let c = ResourceConstraint::from_design(&d);
        assert_eq!(c.max_pes(), d.pe_count());
        assert_eq!(c.max_onchip_bytes(), d.total_onchip_bytes());
        assert!(c.admits(&d).is_ok());
    }

    #[test]
    fn too_many_pes_rejected() {
        let small = baselines::shidiannao();
        let envelope = ResourceConstraint::from_design(&small);
        let big = baselines::nvdla_1024();
        let err = envelope.admits(&big).unwrap_err();
        assert!(err.to_string().contains("PEs"));
    }

    #[test]
    fn memory_overflow_rejected() {
        let d = baselines::eyeriss();
        let tight = ResourceConstraint::new("tight", d.pe_count(), 1024, 1e9, 1e9);
        assert!(tight.admits(&d).is_err());
    }

    #[test]
    #[should_panic(expected = "pe limit")]
    fn zero_limits_panic() {
        let _ = ResourceConstraint::new("bad", 0, 1, 1.0, 1.0);
    }
}
