//! # naas-accel — accelerator architecture descriptions
//!
//! The *hardware side* of the NAAS search space (paper §II-A, Fig. 2):
//!
//! * [`ArchitecturalSizing`] — the numerical knobs every prior framework
//!   already searched: L1/L2 scratch-pad sizes, NoC/DRAM bandwidth;
//! * [`Connectivity`] — the knobs NAAS adds: the number of array
//!   dimensions (1D/2D/3D), the size of each dimension, and the *parallel
//!   dimension* assigned to each (which determines the PE
//!   inter-connection: broadcast for `K`/`Y'`/`X'`, reduction for
//!   `C`/`R`/`S`);
//! * [`Accelerator`] — a complete design point;
//! * [`ResourceConstraint`] — the (#PE, on-chip SRAM, bandwidth) envelope
//!   each experiment must stay within;
//! * [`baselines`] — Eyeriss, NVDLA-256/1024, EdgeTPU and ShiDianNao
//!   reference designs with their canonical dataflows.
//!
//! ```
//! use naas_accel::{baselines, ResourceConstraint};
//!
//! let eyeriss = baselines::eyeriss();
//! let envelope = ResourceConstraint::from_design(&eyeriss);
//! assert!(envelope.admits(&eyeriss).is_ok());
//! assert_eq!(eyeriss.pe_count(), 168);
//! ```

pub mod accelerator;
pub mod area;
pub mod baselines;
pub mod connectivity;
pub mod resource;
pub mod sizing;

pub use accelerator::{Accelerator, DesignError};
pub use connectivity::Connectivity;
pub use resource::ResourceConstraint;
pub use sizing::ArchitecturalSizing;
