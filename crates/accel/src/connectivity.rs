//! PE-array connectivity: array dimensionality, per-dimension sizes, and
//! the parallel tensor dimension assigned to each array dimension.

use naas_ir::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The connectivity half of an accelerator description (paper §II-A0a,
/// class 2): a `k`-dimensional PE array (`k` ∈ 1..=3) where array
/// dimension `i` has `sizes[i]` clusters and spatially maps tensor
/// dimension `parallel[i]`.
///
/// The parallel-dimension choice *is* the PE inter-connection (paper
/// §II-A0b): mapping a reduction dimension (`C`/`R`/`S`) implies a partial
/// sum accumulate/forward network along that axis; mapping `K` implies an
/// input-activation broadcast; mapping `Y'`/`X'` implies a weight
/// broadcast with halo-shared inputs.
///
/// ```
/// use naas_accel::Connectivity;
/// use naas_ir::Dim;
/// let c = Connectivity::new(vec![16, 16], vec![Dim::K, Dim::C])?;
/// assert_eq!(c.ndim(), 2);
/// assert_eq!(c.pe_count(), 256);
/// assert!(c.has_reduction_axis());
/// # Ok::<(), naas_accel::DesignError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Connectivity {
    sizes: Vec<u64>,
    parallel: Vec<Dim>,
}

use crate::accelerator::DesignError;

impl Connectivity {
    /// Creates a connectivity description.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] unless `1 <= sizes.len() == parallel.len()
    /// <= 3`, every size is ≥ 1, and the parallel dimensions are distinct.
    pub fn new(sizes: Vec<u64>, parallel: Vec<Dim>) -> Result<Self, DesignError> {
        if sizes.is_empty() || sizes.len() > 3 {
            return Err(DesignError::BadArrayRank(sizes.len()));
        }
        if sizes.len() != parallel.len() {
            return Err(DesignError::RankMismatch {
                sizes: sizes.len(),
                parallel: parallel.len(),
            });
        }
        if sizes.contains(&0) {
            return Err(DesignError::ZeroArrayDim);
        }
        for i in 0..parallel.len() {
            for j in (i + 1)..parallel.len() {
                if parallel[i] == parallel[j] {
                    return Err(DesignError::DuplicateParallelDim(parallel[i]));
                }
            }
        }
        Ok(Connectivity { sizes, parallel })
    }

    /// One-dimensional array (a PE vector).
    pub fn linear(size: u64, dim: Dim) -> Result<Self, DesignError> {
        Connectivity::new(vec![size], vec![dim])
    }

    /// Two-dimensional array (the most common accelerator organization).
    pub fn grid(rows: u64, cols: u64, row_dim: Dim, col_dim: Dim) -> Result<Self, DesignError> {
        Connectivity::new(vec![rows, cols], vec![row_dim, col_dim])
    }

    /// Number of array dimensions (1, 2 or 3).
    pub fn ndim(&self) -> usize {
        self.sizes.len()
    }

    /// Cluster count along each array dimension, outermost first.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Parallel tensor dimension of each array dimension, outermost first.
    pub fn parallel_dims(&self) -> &[Dim] {
        &self.parallel
    }

    /// Total number of processing elements (product of array sizes).
    pub fn pe_count(&self) -> u64 {
        self.sizes.iter().product()
    }

    /// Spatial fan-out assigned to a tensor dimension, or 1 if the
    /// dimension is not spatially mapped.
    pub fn spatial_extent(&self, dim: Dim) -> u64 {
        self.parallel
            .iter()
            .zip(&self.sizes)
            .filter(|(d, _)| **d == dim)
            .map(|(_, &s)| s)
            .product()
    }

    /// `true` if any array axis spatially maps a reduction dimension
    /// (`C`/`R`/`S`), implying an inter-PE accumulation network.
    pub fn has_reduction_axis(&self) -> bool {
        self.parallel.iter().any(|d| d.is_reduction())
    }

    /// Canonical dataflow label, e.g. `"K-X' Parallel"` (Fig. 7 style).
    pub fn dataflow_label(&self) -> String {
        let names: Vec<&str> = self.parallel.iter().map(|d| d.paper_name()).collect();
        format!("{} Parallel", names.join("-"))
    }

    /// Array-size label, e.g. `"16x16"` or `"4x6x6"` (Fig. 7 style).
    pub fn size_label(&self) -> String {
        self.sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

impl fmt::Display for Connectivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.size_label(), self.dataflow_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_accessors() {
        let c = Connectivity::grid(12, 14, Dim::R, Dim::Y).unwrap();
        assert_eq!(c.ndim(), 2);
        assert_eq!(c.pe_count(), 168);
        assert_eq!(c.spatial_extent(Dim::R), 12);
        assert_eq!(c.spatial_extent(Dim::K), 1);
        assert!(c.has_reduction_axis());
    }

    #[test]
    fn three_dimensional_array() {
        let c = Connectivity::new(vec![4, 6, 6], vec![Dim::C, Dim::K, Dim::X]).unwrap();
        assert_eq!(c.pe_count(), 144);
        assert_eq!(c.dataflow_label(), "C-K-X' Parallel");
        assert_eq!(c.size_label(), "4x6x6");
    }

    #[test]
    fn rank_zero_and_four_rejected() {
        assert!(matches!(
            Connectivity::new(vec![], vec![]),
            Err(DesignError::BadArrayRank(0))
        ));
        assert!(matches!(
            Connectivity::new(vec![2, 2, 2, 2], vec![Dim::K, Dim::C, Dim::Y, Dim::X]),
            Err(DesignError::BadArrayRank(4))
        ));
    }

    #[test]
    fn duplicate_parallel_dim_rejected() {
        assert!(matches!(
            Connectivity::grid(4, 4, Dim::K, Dim::K),
            Err(DesignError::DuplicateParallelDim(Dim::K))
        ));
    }

    #[test]
    fn mismatched_ranks_rejected() {
        assert!(matches!(
            Connectivity::new(vec![4, 4], vec![Dim::K]),
            Err(DesignError::RankMismatch { .. })
        ));
    }

    #[test]
    fn zero_size_rejected() {
        assert!(matches!(
            Connectivity::grid(0, 4, Dim::K, Dim::C),
            Err(DesignError::ZeroArrayDim)
        ));
    }

    #[test]
    fn no_reduction_axis_for_output_parallel() {
        let c = Connectivity::grid(8, 8, Dim::Y, Dim::X).unwrap();
        assert!(!c.has_reduction_axis());
    }
}
