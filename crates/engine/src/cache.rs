//! Concurrent, two-level, content-addressed memoization of per-layer
//! search results.
//!
//! Level one is a **design fingerprint** (accelerator × inner-search
//! budget × base seed — whatever the caller folds into
//! [`crate::fingerprint::fingerprint`]); level two is the [`LayerKey`],
//! the shape identity of a convolution workload. Two layers with equal
//! keys have identical cost under every `(accelerator, mapping)` pair, so
//! a population of candidates — and every later generation, and every
//! other search sharing the cache — reuses mapping-search results
//! whenever a (design, shape) pair recurs.
//!
//! This generalizes the single-call `LayerCache` of
//! `naas::layer_cache` (which lives and dies inside one
//! `network_mapping_search` call) to the whole co-search: the cache is
//! `Sync`, shared across worker threads, and hit/miss/entry counts are
//! exported for checkpoints and reports.
//!
//! Correctness requires the cached value to be a pure function of the
//! key. The engine achieves that by deriving inner-search seeds from the
//! same content that forms the key
//! ([`crate::fingerprint::derive_seed`]) — never from slot or
//! generation indices.

use crate::fingerprint::fnv1a;
use naas_ir::ConvSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hashable identity of a convolution workload: two layers with equal
/// keys have identical cost under every `(accelerator, mapping)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerKey {
    batch: u64,
    in_channels: u64,
    out_channels: u64,
    in_y: u64,
    in_x: u64,
    kernel_r: u64,
    kernel_s: u64,
    stride: u64,
    padding: u64,
    groups: u64,
}

impl LayerKey {
    /// Extracts the shape key of a layer (name and kind are cost-neutral
    /// labels and are excluded).
    pub fn of(layer: &ConvSpec) -> Self {
        LayerKey {
            batch: layer.batch(),
            in_channels: layer.in_channels(),
            out_channels: layer.out_channels(),
            in_y: layer.in_y(),
            in_x: layer.in_x(),
            kernel_r: layer.kernel_r(),
            kernel_s: layer.kernel_s(),
            stride: layer.stride(),
            padding: layer.padding(),
            groups: layer.groups(),
        }
    }

    /// A stable 64-bit digest of the shape, used for seed derivation.
    pub fn fingerprint(&self) -> u64 {
        let fields = [
            self.batch,
            self.in_channels,
            self.out_channels,
            self.in_y,
            self.in_x,
            self.kernel_r,
            self.kernel_s,
            self.stride,
            self.padding,
            self.groups,
        ];
        let mut bytes = [0u8; 80];
        for (i, f) in fields.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// Cache occupancy and effectiveness counters; serialized into
/// checkpoints and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on a concurrent
    /// computation of the same key).
    pub hits: u64,
    /// Lookups that ran the computation.
    pub misses: u64,
    /// Distinct `(design, layer-shape)` entries resident.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

type Shard<V> = Mutex<HashMap<(u64, LayerKey), Arc<OnceLock<V>>>>;

/// A sharded concurrent memo table from `(design fingerprint, layer
/// shape)` to a search result.
///
/// Concurrent callers of the same key race once: the first runs the
/// computation, later ones block on the entry's `OnceLock` and reuse the
/// value — no duplicated work inside a population evaluation.
pub struct MemoCache<V> {
    shards: [Shard<V>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemoCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MemoCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, design_fp: u64, key: &LayerKey) -> &Shard<V> {
        let idx = (design_fp ^ key.fingerprint()) as usize % SHARDS;
        &self.shards[idx]
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Drops every entry (counters are kept; they describe lifetime
    /// traffic, not occupancy).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }
}

impl<V: Clone> MemoCache<V> {
    /// Returns the cached value for `(design_fp, key)`, running `compute`
    /// and inserting its result on miss. Concurrent lookups of the same
    /// key run `compute` exactly once.
    pub fn get_or_compute(&self, design_fp: u64, key: LayerKey, compute: impl FnOnce() -> V) -> V {
        let cell = {
            let mut shard = self
                .shard(design_fp, &key)
                .lock()
                .expect("cache shard poisoned");
            Arc::clone(
                shard
                    .entry((design_fp, key))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    /// Returns the cached value without computing, if present and
    /// initialized.
    pub fn peek(&self, design_fp: u64, key: &LayerKey) -> Option<V> {
        let shard = self
            .shard(design_fp, key)
            .lock()
            .expect("cache shard poisoned");
        shard
            .get(&(design_fp, *key))
            .and_then(|cell| cell.get().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u64, k: u64) -> LayerKey {
        LayerKey {
            batch: 1,
            in_channels: c,
            out_channels: k,
            in_y: 8,
            in_x: 8,
            kernel_r: 3,
            kernel_s: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn hit_does_not_recompute() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 42), 42);
        assert_eq!(
            cache.get_or_compute(1, key(8, 8), || panic!("must not recompute")),
            42
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn design_levels_are_isolated() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 1), 1);
        assert_eq!(cache.get_or_compute(2, key(8, 8), || 2), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(1, &key(8, 8)), Some(1));
        assert_eq!(cache.peek(2, &key(8, 8)), Some(2));
        assert_eq!(cache.peek(3, &key(8, 8)), None);
    }

    #[test]
    fn concurrent_lookups_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache: MemoCache<u64> = MemoCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..100u64 {
                        let v = cache.get_or_compute(7, key(i, i), || {
                            runs.fetch_add(1, Ordering::Relaxed);
                            i * 3
                        });
                        assert_eq!(v, i * 3);
                    }
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(cache.len(), 100);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(1, 1), || 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_shape_same_key_distinct_fingerprints() {
        assert_eq!(key(4, 4), key(4, 4));
        assert_ne!(key(4, 4).fingerprint(), key(4, 5).fingerprint());
    }
}
