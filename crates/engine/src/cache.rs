//! Concurrent, two-level, content-addressed memoization of per-layer
//! search results.
//!
//! Level one is a **design fingerprint** (accelerator × inner-search
//! budget × base seed — whatever the caller folds into
//! [`crate::fingerprint::fingerprint`]); level two is the [`LayerKey`],
//! the shape identity of a convolution workload. Two layers with equal
//! keys have identical cost under every `(accelerator, mapping)` pair, so
//! a population of candidates — and every later generation, and every
//! other search sharing the cache — reuses mapping-search results
//! whenever a (design, shape) pair recurs.
//!
//! This generalizes the single-call `LayerCache` of
//! `naas::layer_cache` (which lives and dies inside one
//! `network_mapping_search` call) to the whole co-search: the cache is
//! `Sync`, shared across worker threads, and hit/miss/entry counts are
//! exported for checkpoints and reports.
//!
//! Correctness requires the cached value to be a pure function of the
//! key. The engine achieves that by deriving inner-search seeds from the
//! same content that forms the key
//! ([`crate::fingerprint::derive_seed`]) — never from slot or
//! generation indices.

use crate::checkpoint::{self, CheckpointError};
use crate::fingerprint::fnv1a;
use naas_ir::ConvSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hashable identity of a convolution workload: two layers with equal
/// keys have identical cost under every `(accelerator, mapping)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerKey {
    batch: u64,
    in_channels: u64,
    out_channels: u64,
    in_y: u64,
    in_x: u64,
    kernel_r: u64,
    kernel_s: u64,
    stride: u64,
    padding: u64,
    groups: u64,
}

impl LayerKey {
    /// Extracts the shape key of a layer (name and kind are cost-neutral
    /// labels and are excluded).
    pub fn of(layer: &ConvSpec) -> Self {
        LayerKey {
            batch: layer.batch(),
            in_channels: layer.in_channels(),
            out_channels: layer.out_channels(),
            in_y: layer.in_y(),
            in_x: layer.in_x(),
            kernel_r: layer.kernel_r(),
            kernel_s: layer.kernel_s(),
            stride: layer.stride(),
            padding: layer.padding(),
            groups: layer.groups(),
        }
    }

    /// A stable 64-bit digest of the shape, used for seed derivation.
    pub fn fingerprint(&self) -> u64 {
        let fields = [
            self.batch,
            self.in_channels,
            self.out_channels,
            self.in_y,
            self.in_x,
            self.kernel_r,
            self.kernel_s,
            self.stride,
            self.padding,
            self.groups,
        ];
        let mut bytes = [0u8; 80];
        for (i, f) in fields.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// Cache occupancy and effectiveness counters; serialized into
/// checkpoints and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on a concurrent
    /// computation of the same key).
    pub hits: u64,
    /// Lookups that ran the computation.
    pub misses: u64,
    /// Distinct `(design, layer-shape)` entries resident.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Upper bound on undrained journal keys (~10 MB of keys). See
/// [`MemoCache::enable_journal`].
pub const JOURNAL_CAP: usize = 100_000;

type Shard<V> = Mutex<HashMap<(u64, LayerKey), Arc<OnceLock<V>>>>;

/// A sharded concurrent memo table from `(design fingerprint, layer
/// shape)` to a search result.
///
/// Concurrent callers of the same key race once: the first runs the
/// computation, later ones block on the entry's `OnceLock` and reuse the
/// value — no duplicated work inside a population evaluation.
///
/// # Examples
///
/// Persistence round-trip: a cache saved with [`MemoCache::save_to`]
/// warm-loads into a fresh process with [`MemoCache::load_from`], and
/// warmed entries are served without recomputation (content-addressed,
/// so warming never changes any answer):
///
/// ```
/// use naas_engine::{LayerKey, MemoCache};
///
/// let layer = naas_ir::ConvSpec::conv2d("l", 8, 8, (8, 8), (3, 3), 1, 1).unwrap();
/// let key = LayerKey::of(&layer);
///
/// let cache: MemoCache<u64> = MemoCache::new();
/// assert_eq!(cache.get_or_compute(7, key, || 42), 42);
///
/// let path = std::env::temp_dir().join(format!("memo-doc-{}.json", std::process::id()));
/// cache.save_to(&path)?;
///
/// let warm: MemoCache<u64> = MemoCache::new();
/// assert_eq!(warm.load_from(&path)?, 1); // one entry absorbed
/// assert_eq!(warm.get_or_compute(7, key, || unreachable!("served warm")), 42);
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), naas_engine::CheckpointError>(())
/// ```
pub struct MemoCache<V> {
    shards: [Shard<V>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Keys computed locally since the last [`MemoCache::take_new_entries`]
    /// drain — `None` until journaling is enabled. Only *computed* entries
    /// are journaled; absorbed ones came from elsewhere and would be
    /// echoed back to their source.
    journal: Mutex<Option<Vec<(u64, LayerKey)>>>,
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemoCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MemoCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            journal: Mutex::new(None),
        }
    }

    /// Starts journaling locally computed entries, so
    /// [`MemoCache::take_new_entries`] can export them as incremental
    /// deltas (the distributed workers' cache-gossip path). Idempotent;
    /// entries computed before the first call are not journaled. Off by
    /// default — a long single-process search has no consumer for the
    /// journal and should not grow one. Once enabled, the journal stays
    /// bounded even if its consumer disappears: an undrained backlog is
    /// dropped past [`JOURNAL_CAP`] keys (gossip is best-effort; the
    /// cache itself keeps every value).
    pub fn enable_journal(&self) {
        let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if journal.is_none() {
            *journal = Some(Vec::new());
        }
    }

    fn record_journal(&self, design_fp: u64, key: LayerKey) {
        let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entries) = journal.as_mut() {
            // A backlog this deep means nothing has drained for ~CAP
            // computations — the consumer that enabled journaling is
            // gone (e.g. a serve process whose coordinator left). Drop
            // it rather than grow forever; deltas are an optimization,
            // the cache still holds every value.
            if entries.len() >= JOURNAL_CAP {
                entries.clear();
            }
            entries.push((design_fp, key));
        }
    }

    fn shard(&self, design_fp: u64, key: &LayerKey) -> &Shard<V> {
        let idx = (design_fp ^ key.fingerprint()) as usize % SHARDS;
        &self.shards[idx]
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Drops every entry (counters are kept; they describe lifetime
    /// traffic, not occupancy).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }
}

impl<V: Clone> MemoCache<V> {
    /// Returns the cached value for `(design_fp, key)`, running `compute`
    /// and inserting its result on miss. Concurrent lookups of the same
    /// key run `compute` exactly once.
    pub fn get_or_compute(&self, design_fp: u64, key: LayerKey, compute: impl FnOnce() -> V) -> V {
        let cell = {
            let mut shard = self
                .shard(design_fp, &key)
                .lock()
                .expect("cache shard poisoned");
            Arc::clone(
                shard
                    .entry((design_fp, key))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.record_journal(design_fp, key);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    /// Drains the journal (see [`MemoCache::enable_journal`]) into a
    /// [`CacheSnapshot`] of everything this process computed since the
    /// last drain — the incremental delta a distributed worker piggybacks
    /// on its shard replies. Entries are ordered like
    /// [`MemoCache::snapshot`] (content fingerprint), so the same new
    /// work always produces the same delta. Returns an empty snapshot
    /// when journaling is off or nothing new was computed.
    ///
    /// The drain is atomic but process-global: when two requests drain
    /// concurrently, each journaled entry lands in exactly one of the
    /// two deltas. Every entry still reaches *a* consumer (and stays in
    /// this cache regardless), so gossip through concurrent coordinators
    /// degrades to best-effort rather than breaking — a recipient may
    /// just learn some entries a round later, or recompute them.
    pub fn take_new_entries(&self) -> CacheSnapshot<V> {
        let drained: Vec<(u64, LayerKey)> = {
            let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
            match journal.as_mut() {
                Some(entries) => std::mem::take(entries),
                None => Vec::new(),
            }
        };
        let mut entries = Vec::with_capacity(drained.len());
        for (fp, key) in drained {
            if let Some(value) = self.peek(fp, &key) {
                entries.push((fp, key, value));
            }
        }
        entries.sort_by_key(|(fp, key, _)| (*fp, key.fingerprint()));
        CacheSnapshot { entries }
    }

    /// Returns the cached value without computing, if present and
    /// initialized.
    pub fn peek(&self, design_fp: u64, key: &LayerKey) -> Option<V> {
        let shard = self
            .shard(design_fp, key)
            .lock()
            .expect("cache shard poisoned");
        shard
            .get(&(design_fp, *key))
            .and_then(|cell| cell.get().cloned())
    }

    /// Freezes every initialized entry into a serializable snapshot.
    /// Entries are sorted by content fingerprint, so the same cache state
    /// always produces the same file (friendly to diffing and hashing).
    pub fn snapshot(&self) -> CacheSnapshot<V> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for ((fp, key), cell) in shard.iter() {
                if let Some(value) = cell.get() {
                    entries.push((*fp, *key, value.clone()));
                }
            }
        }
        entries.sort_by_key(|(fp, key, _)| (*fp, key.fingerprint()));
        CacheSnapshot { entries }
    }

    /// Warm-loads a snapshot: entries not yet present are inserted as
    /// already-initialized cells. Existing entries win (they are
    /// content-addressed, so a disagreement can only come from a stale or
    /// foreign file — the live value is the trustworthy one). Returns how
    /// many entries were absorbed. Counters are untouched: warm entries
    /// count as hits only when a search actually reuses them.
    pub fn absorb(&self, snapshot: CacheSnapshot<V>) -> usize {
        let mut absorbed = 0;
        for (fp, key, value) in snapshot.entries {
            let mut shard = self.shard(fp, &key).lock().expect("cache shard poisoned");
            let cell = shard
                .entry((fp, key))
                .or_insert_with(|| Arc::new(OnceLock::new()));
            if cell.get().is_none() {
                // A concurrent computation may win the race; both values
                // are the same pure function of the key, so either is fine.
                let _ = cell.set(value);
                absorbed += 1;
            }
        }
        absorbed
    }
}

impl<V: Clone + Serialize> MemoCache<V> {
    /// Persists the cache to `path` as JSON (atomic write via the
    /// checkpoint machinery).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be written.
    pub fn save_to(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::save(path, &self.snapshot())
    }
}

impl<V: Clone + Deserialize> MemoCache<V> {
    /// Warm-loads entries previously saved with [`MemoCache::save_to`].
    /// Returns how many entries were absorbed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Format`] if it does not decode as a snapshot.
    pub fn load_from(&self, path: &Path) -> Result<usize, CheckpointError> {
        let snapshot: CacheSnapshot<V> = checkpoint::load(path)?;
        Ok(self.absorb(snapshot))
    }
}

/// A serializable image of a [`MemoCache`]'s initialized entries: the
/// warm-start file format of `--cache-file`. Soundness carries over from
/// the cache itself — entries are pure functions of `(design fingerprint,
/// layer key)`, so absorbing a snapshot produced by any run with the same
/// fingerprinting scheme gives exactly the results a cold computation
/// would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot<V> {
    /// `(design fingerprint, layer shape, cached value)` triples.
    pub entries: Vec<(u64, LayerKey, V)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u64, k: u64) -> LayerKey {
        LayerKey {
            batch: 1,
            in_channels: c,
            out_channels: k,
            in_y: 8,
            in_x: 8,
            kernel_r: 3,
            kernel_s: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn hit_does_not_recompute() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 42), 42);
        assert_eq!(
            cache.get_or_compute(1, key(8, 8), || panic!("must not recompute")),
            42
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn design_levels_are_isolated() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 1), 1);
        assert_eq!(cache.get_or_compute(2, key(8, 8), || 2), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(1, &key(8, 8)), Some(1));
        assert_eq!(cache.peek(2, &key(8, 8)), Some(2));
        assert_eq!(cache.peek(3, &key(8, 8)), None);
    }

    #[test]
    fn concurrent_lookups_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache: MemoCache<u64> = MemoCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..100u64 {
                        let v = cache.get_or_compute(7, key(i, i), || {
                            runs.fetch_add(1, Ordering::Relaxed);
                            i * 3
                        });
                        assert_eq!(v, i * 3);
                    }
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(cache.len(), 100);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(1, 1), || 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_shape_same_key_distinct_fingerprints() {
        assert_eq!(key(4, 4), key(4, 4));
        assert_ne!(key(4, 4).fingerprint(), key(4, 5).fingerprint());
    }

    #[test]
    fn snapshot_roundtrips_through_absorb() {
        let cache: MemoCache<u64> = MemoCache::new();
        for i in 0..20u64 {
            cache.get_or_compute(i % 3, key(i, i), || i * 7);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.entries.len(), 20);

        let warm: MemoCache<u64> = MemoCache::new();
        assert_eq!(warm.absorb(snap), 20);
        assert_eq!(warm.len(), 20);
        for i in 0..20u64 {
            // Warm entries are served without running the computation.
            let v = warm.get_or_compute(i % 3, key(i, i), || panic!("must hit"));
            assert_eq!(v, i * 7);
        }
        assert_eq!(warm.stats().hits, 20);
    }

    #[test]
    fn absorb_never_overwrites_live_entries() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(2, 2), || 10);
        let stale = CacheSnapshot {
            entries: vec![(1, key(2, 2), 99), (1, key(3, 3), 30)],
        };
        assert_eq!(cache.absorb(stale), 1);
        assert_eq!(cache.peek(1, &key(2, 2)), Some(10));
        assert_eq!(cache.peek(1, &key(3, 3)), Some(30));
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let a: MemoCache<u64> = MemoCache::new();
        let b: MemoCache<u64> = MemoCache::new();
        for i in 0..32u64 {
            a.get_or_compute(i, key(i, 1), || i);
        }
        for i in (0..32u64).rev() {
            b.get_or_compute(i, key(i, 1), || i);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn journal_exports_only_entries_computed_after_enabling() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(1, 1), || 10); // pre-journal: not exported
        cache.enable_journal();
        cache.enable_journal(); // idempotent
        cache.get_or_compute(1, key(2, 2), || 20);
        cache.get_or_compute(1, key(2, 2), || panic!("hit, not journaled twice"));
        cache.get_or_compute(2, key(3, 3), || 30);
        let delta = cache.take_new_entries();
        assert_eq!(delta.entries.len(), 2);
        assert!(delta
            .entries
            .iter()
            .any(|(fp, k, v)| (*fp, *k, *v) == (1, key(2, 2), 20)));
        assert!(delta
            .entries
            .iter()
            .any(|(fp, k, v)| (*fp, *k, *v) == (2, key(3, 3), 30)));
        // Drained: the next delta is empty until new work is computed.
        assert!(cache.take_new_entries().entries.is_empty());
        cache.get_or_compute(3, key(4, 4), || 40);
        assert_eq!(cache.take_new_entries().entries.len(), 1);
    }

    #[test]
    fn absorbed_entries_are_not_journaled() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.enable_journal();
        cache.absorb(CacheSnapshot {
            entries: vec![(7, key(5, 5), 50)],
        });
        assert!(
            cache.take_new_entries().entries.is_empty(),
            "absorbed entries came from elsewhere and must not be re-exported"
        );
        // But a journal-off cache exports nothing either.
        let off: MemoCache<u64> = MemoCache::new();
        off.get_or_compute(1, key(1, 1), || 1);
        assert!(off.take_new_entries().entries.is_empty());
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(5, key(8, 16), || 123);
        cache.get_or_compute(6, key(4, 4), || 456);
        let path =
            std::env::temp_dir().join(format!("naas-engine-cache-{}.json", std::process::id()));
        cache.save_to(&path).unwrap();
        let warm: MemoCache<u64> = MemoCache::new();
        assert_eq!(warm.load_from(&path).unwrap(), 2);
        assert_eq!(warm.peek(5, &key(8, 16)), Some(123));
        assert_eq!(warm.peek(6, &key(4, 4)), Some(456));
        std::fs::remove_file(&path).ok();
    }
}
