//! Concurrent, two-level, content-addressed memoization of per-layer
//! search results.
//!
//! Level one is a **design fingerprint** (accelerator × inner-search
//! budget × base seed — whatever the caller folds into
//! [`crate::fingerprint::fingerprint`]); level two is the [`LayerKey`],
//! the shape identity of a convolution workload. Two layers with equal
//! keys have identical cost under every `(accelerator, mapping)` pair, so
//! a population of candidates — and every later generation, and every
//! other search sharing the cache — reuses mapping-search results
//! whenever a (design, shape) pair recurs.
//!
//! This generalizes the single-call `LayerCache` of
//! `naas::layer_cache` (which lives and dies inside one
//! `network_mapping_search` call) to the whole co-search: the cache is
//! `Sync`, shared across worker threads, and hit/miss/entry counts are
//! exported for checkpoints and reports.
//!
//! Correctness requires the cached value to be a pure function of the
//! key. The engine achieves that by deriving inner-search seeds from the
//! same content that forms the key
//! ([`crate::fingerprint::derive_seed`]) — never from slot or
//! generation indices.
//!
//! The cache is unbounded by default (a single search's working set is
//! design-space sized), but long-lived processes — week-long distributed
//! fleets, resident `naas-search serve`/`worker` engines — can bound it
//! with [`MemoCache::set_entry_cap`] (CLI: `--cache-cap`): occupancy
//! then never exceeds the cap, enforced by a CLOCK (second-chance)
//! eviction policy. Because entries are pure functions of their keys,
//! eviction can only cost recomputation, never correctness.

use crate::checkpoint::{self, CheckpointError};
use crate::fingerprint::fnv1a;
use naas_ir::ConvSpec;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hashable identity of a convolution workload: two layers with equal
/// keys have identical cost under every `(accelerator, mapping)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerKey {
    batch: u64,
    in_channels: u64,
    out_channels: u64,
    in_y: u64,
    in_x: u64,
    kernel_r: u64,
    kernel_s: u64,
    stride: u64,
    padding: u64,
    groups: u64,
}

impl LayerKey {
    /// Extracts the shape key of a layer (name and kind are cost-neutral
    /// labels and are excluded).
    pub fn of(layer: &ConvSpec) -> Self {
        LayerKey {
            batch: layer.batch(),
            in_channels: layer.in_channels(),
            out_channels: layer.out_channels(),
            in_y: layer.in_y(),
            in_x: layer.in_x(),
            kernel_r: layer.kernel_r(),
            kernel_s: layer.kernel_s(),
            stride: layer.stride(),
            padding: layer.padding(),
            groups: layer.groups(),
        }
    }

    /// A stable 64-bit digest of the shape, used for seed derivation.
    pub fn fingerprint(&self) -> u64 {
        let fields = [
            self.batch,
            self.in_channels,
            self.out_channels,
            self.in_y,
            self.in_x,
            self.kernel_r,
            self.kernel_s,
            self.stride,
            self.padding,
            self.groups,
        ];
        let mut bytes = [0u8; 80];
        for (i, f) in fields.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// Cache occupancy and effectiveness counters; serialized into
/// checkpoints and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on a concurrent
    /// computation of the same key).
    pub hits: u64,
    /// Lookups that ran the computation.
    pub misses: u64,
    /// Distinct `(design, layer-shape)` entries resident.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Upper bound on undrained journal keys (~10 MB of keys). See
/// [`MemoCache::enable_journal`].
pub const JOURNAL_CAP: usize = 100_000;

type CacheKey = (u64, LayerKey);

/// One shard of the memo table: the map itself plus the CLOCK
/// bookkeeping that drives eviction when an entry cap is configured.
/// The `clock` queue holds keys in insertion/recency order; `touched`
/// is the set of reference bits (a key present there was hit since it
/// last survived an eviction scan and gets a second chance).
struct ShardState<V> {
    map: HashMap<CacheKey, Arc<OnceLock<V>>>,
    clock: VecDeque<CacheKey>,
    touched: HashSet<CacheKey>,
}

impl<V> ShardState<V> {
    fn new() -> Self {
        ShardState {
            map: HashMap::new(),
            clock: VecDeque::new(),
            touched: HashSet::new(),
        }
    }

    /// Evicts one initialized entry by the CLOCK (second-chance) rule.
    /// Returns `false` when the shard has nothing safely evictable —
    /// every resident cell is either still being computed (evicting it
    /// would duplicate in-flight work) or was touched this rotation.
    fn evict_one(&mut self) -> bool {
        // One full rotation at most: a popped key either leaves the
        // queue for good (stale or evicted) or re-enters with its
        // reference bit cleared, so the scan terminates.
        let mut budget = self.clock.len();
        while budget > 0 {
            budget -= 1;
            let Some(key) = self.clock.pop_front() else {
                return false;
            };
            let Some(cell) = self.map.get(&key) else {
                continue; // stale queue entry: already evicted earlier
            };
            if self.touched.remove(&key) || cell.get().is_none() {
                self.clock.push_back(key); // second chance / in flight
                continue;
            }
            self.map.remove(&key);
            return true;
        }
        false
    }
}

type Shard<V> = Mutex<ShardState<V>>;

/// A sharded concurrent memo table from `(design fingerprint, layer
/// shape)` to a search result.
///
/// Concurrent callers of the same key race once: the first runs the
/// computation, later ones block on the entry's `OnceLock` and reuse the
/// value — no duplicated work inside a population evaluation.
///
/// # Examples
///
/// Persistence round-trip: a cache saved with [`MemoCache::save_to`]
/// warm-loads into a fresh process with [`MemoCache::load_from`], and
/// warmed entries are served without recomputation (content-addressed,
/// so warming never changes any answer):
///
/// ```
/// use naas_engine::{LayerKey, MemoCache};
///
/// let layer = naas_ir::ConvSpec::conv2d("l", 8, 8, (8, 8), (3, 3), 1, 1).unwrap();
/// let key = LayerKey::of(&layer);
///
/// let cache: MemoCache<u64> = MemoCache::new();
/// assert_eq!(cache.get_or_compute(7, key, || 42), 42);
///
/// let path = std::env::temp_dir().join(format!("memo-doc-{}.json", std::process::id()));
/// cache.save_to(&path)?;
///
/// let warm: MemoCache<u64> = MemoCache::new();
/// assert_eq!(warm.load_from(&path)?, 1); // one entry absorbed
/// assert_eq!(warm.get_or_compute(7, key, || unreachable!("served warm")), 42);
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), naas_engine::CheckpointError>(())
/// ```
pub struct MemoCache<V> {
    shards: [Shard<V>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Resident entry count across all shards (kept in step with every
    /// map mutation, so `len` and cap enforcement are O(1) reads).
    entries: AtomicUsize,
    /// Maximum resident entries; `0` means unbounded. See
    /// [`MemoCache::set_entry_cap`].
    cap: AtomicUsize,
    /// Entries evicted to honour the cap (lifetime counter).
    evicted: AtomicU64,
    /// Keys computed locally since the last [`MemoCache::take_new_entries`]
    /// drain — `None` until journaling is enabled. Only *computed* entries
    /// are journaled; absorbed ones came from elsewhere and would be
    /// echoed back to their source.
    journal: Mutex<Option<Vec<(u64, LayerKey)>>>,
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemoCache<V> {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        MemoCache {
            shards: std::array::from_fn(|_| Mutex::new(ShardState::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
            cap: AtomicUsize::new(0),
            evicted: AtomicU64::new(0),
            journal: Mutex::new(None),
        }
    }

    /// Bounds the cache to at most `cap` resident entries (`0` restores
    /// the unbounded default). When an insert pushes occupancy past the
    /// cap, entries are evicted by a CLOCK (second-chance) policy:
    /// least-recently-touched first, entries hit since the last scan
    /// survive one extra rotation. This is what keeps week-long fleets
    /// (`naas-search … --cache-cap N`) at steady memory.
    ///
    /// Eviction never changes any answer — entries are pure functions
    /// of their keys, so an evicted pair is simply recomputed on its
    /// next use (and counted as a miss again). Entries whose value is
    /// still being computed are never evicted. Under concurrent inserts
    /// occupancy can transiently overshoot the cap by at most the
    /// number of inserting threads; every inserter evicts down to the
    /// cap before returning.
    pub fn set_entry_cap(&self, cap: usize) {
        self.cap.store(cap, Ordering::Relaxed);
    }

    /// The configured entry cap (`0` = unbounded).
    pub fn entry_cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// Entries evicted so far to honour the cap (lifetime counter).
    pub fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Starts journaling locally computed entries, so
    /// [`MemoCache::take_new_entries`] can export them as incremental
    /// deltas (the distributed workers' cache-gossip path). Idempotent;
    /// entries computed before the first call are not journaled. Off by
    /// default — a long single-process search has no consumer for the
    /// journal and should not grow one. Once enabled, the journal stays
    /// bounded even if its consumer disappears: an undrained backlog is
    /// dropped past [`JOURNAL_CAP`] keys (gossip is best-effort; the
    /// cache itself keeps every value).
    pub fn enable_journal(&self) {
        let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if journal.is_none() {
            *journal = Some(Vec::new());
        }
    }

    fn record_journal(&self, design_fp: u64, key: LayerKey) {
        let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entries) = journal.as_mut() {
            if entries.len() >= JOURNAL_CAP {
                // The backlog hit its cap: compact first (an evicted and
                // recomputed key is journaled once per computation, so
                // duplicates accumulate on a capped cache), and only if
                // the backlog is *still* full — nothing has drained for
                // ~CAP distinct computations, the consumer that enabled
                // journaling is gone — drop the oldest half rather than
                // grow forever. Deltas are an optimization; the cache
                // itself still holds every live value.
                let mut seen = HashSet::with_capacity(entries.len());
                entries.retain(|e| seen.insert(*e));
                if entries.len() >= JOURNAL_CAP {
                    entries.drain(..JOURNAL_CAP / 2);
                }
            }
            entries.push((design_fp, key));
        }
    }

    fn shard_idx(design_fp: u64, key: &LayerKey) -> usize {
        (design_fp ^ key.fingerprint()) as usize % SHARDS
    }

    fn shard(&self, design_fp: u64, key: &LayerKey) -> &Shard<V> {
        &self.shards[Self::shard_idx(design_fp, key)]
    }

    /// Evicts entries until occupancy is back under the configured cap
    /// (no-op when unbounded). Starts at the shard that just inserted
    /// (`home`) and rotates through the others; locks are taken one
    /// shard at a time, never nested.
    fn enforce_cap(&self, home: usize) {
        let cap = self.cap.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let mut shard = home;
        let mut stuck = 0;
        // Two full rounds before giving up: the first may only clear
        // reference bits (every entry touched since the last scan), the
        // second then finds victims. Giving up is reachable only when
        // everything resident is mid-computation.
        while self.entries.load(Ordering::Relaxed) > cap && stuck < 2 * SHARDS {
            let evicted = self.shards[shard]
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .evict_one();
            if evicted {
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                stuck = 0;
            } else {
                // Nothing safely evictable here (empty, or every entry
                // is mid-computation); try the next shard, give up after
                // a full round with no progress.
                shard = (shard + 1) % SHARDS;
                stuck += 1;
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Drops every entry (counters are kept; they describe lifetime
    /// traffic, not occupancy).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.clock.clear();
            shard.touched.clear();
        }
        self.entries.store(0, Ordering::Relaxed);
    }
}

impl<V: Clone> MemoCache<V> {
    /// Returns the cached value for `(design_fp, key)`, running `compute`
    /// and inserting its result on miss. Concurrent lookups of the same
    /// key run `compute` exactly once.
    pub fn get_or_compute(&self, design_fp: u64, key: LayerKey, compute: impl FnOnce() -> V) -> V {
        let home = Self::shard_idx(design_fp, &key);
        let bounded = self.cap.load(Ordering::Relaxed) != 0;
        let mut inserted = false;
        let cell = {
            let mut shard = self.shards[home].lock().expect("cache shard poisoned");
            match shard.map.get(&(design_fp, key)) {
                Some(cell) => {
                    let cell = Arc::clone(cell);
                    if bounded {
                        // CLOCK reference bit: a hit entry survives the
                        // next eviction scan.
                        shard.touched.insert((design_fp, key));
                    }
                    cell
                }
                None => {
                    let cell = Arc::new(OnceLock::new());
                    shard.map.insert((design_fp, key), Arc::clone(&cell));
                    shard.clock.push_back((design_fp, key));
                    if bounded {
                        // Fresh entries start with the reference bit set,
                        // so an insert never evicts itself when its own
                        // shard is the only one with room to give.
                        shard.touched.insert((design_fp, key));
                    }
                    inserted = true;
                    cell
                }
            }
        };
        if inserted {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.record_journal(design_fp, key);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let value = value.clone();
        if inserted {
            // Enforce only after the value is set: the fresh cell is
            // in flight until then, and in-flight cells are never
            // evicted — so the insert that overflows the cap always
            // finds something *else* to evict.
            self.enforce_cap(home);
        }
        value
    }

    /// Drains the journal (see [`MemoCache::enable_journal`]) into a
    /// [`CacheSnapshot`] of everything this process computed since the
    /// last drain — the incremental delta a distributed worker piggybacks
    /// on its shard replies. Entries are ordered like
    /// [`MemoCache::snapshot`] (content fingerprint), so the same new
    /// work always produces the same delta. Returns an empty snapshot
    /// when journaling is off or nothing new was computed.
    ///
    /// The drain is atomic but process-global: when two requests drain
    /// concurrently, each journaled entry lands in exactly one of the
    /// two deltas. Every entry still reaches *a* consumer (and stays in
    /// this cache regardless), so gossip through concurrent coordinators
    /// degrades to best-effort rather than breaking — a recipient may
    /// just learn some entries a round later, or recompute them.
    pub fn take_new_entries(&self) -> CacheSnapshot<V> {
        let drained: Vec<(u64, LayerKey)> = {
            let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
            match journal.as_mut() {
                Some(entries) => std::mem::take(entries),
                None => Vec::new(),
            }
        };
        // Compacting drain: on a capped cache a key can be evicted and
        // recomputed between drains (journaled once per computation),
        // and an evicted key has no value to export — dedupe, then peek.
        let mut seen = HashSet::with_capacity(drained.len());
        let mut entries = Vec::with_capacity(drained.len());
        for (fp, key) in drained {
            if !seen.insert((fp, key)) {
                continue;
            }
            if let Some(value) = self.peek(fp, &key) {
                entries.push((fp, key, value));
            }
        }
        entries.sort_by_key(|(fp, key, _)| (*fp, key.fingerprint()));
        CacheSnapshot { entries }
    }

    /// Returns the cached value without computing, if present and
    /// initialized.
    pub fn peek(&self, design_fp: u64, key: &LayerKey) -> Option<V> {
        let shard = self
            .shard(design_fp, key)
            .lock()
            .expect("cache shard poisoned");
        shard
            .map
            .get(&(design_fp, *key))
            .and_then(|cell| cell.get().cloned())
    }

    /// Freezes every initialized entry into a serializable snapshot.
    /// Entries are sorted by content fingerprint, so the same cache state
    /// always produces the same file (friendly to diffing and hashing).
    pub fn snapshot(&self) -> CacheSnapshot<V> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for ((fp, key), cell) in shard.map.iter() {
                if let Some(value) = cell.get() {
                    entries.push((*fp, *key, value.clone()));
                }
            }
        }
        entries.sort_by_key(|(fp, key, _)| (*fp, key.fingerprint()));
        CacheSnapshot { entries }
    }

    /// Warm-loads a snapshot: entries not yet present are inserted as
    /// already-initialized cells. Existing entries win (they are
    /// content-addressed, so a disagreement can only come from a stale or
    /// foreign file — the live value is the trustworthy one). Returns how
    /// many entries were absorbed. Counters are untouched: warm entries
    /// count as hits only when a search actually reuses them.
    pub fn absorb(&self, snapshot: CacheSnapshot<V>) -> usize {
        let mut absorbed = 0;
        for (fp, key, value) in snapshot.entries {
            let home = Self::shard_idx(fp, &key);
            let mut shard = self.shards[home].lock().expect("cache shard poisoned");
            let mut inserted = false;
            let cell = shard.map.entry((fp, key)).or_insert_with(|| {
                inserted = true;
                Arc::new(OnceLock::new())
            });
            if cell.get().is_none() {
                // A concurrent computation may win the race; both values
                // are the same pure function of the key, so either is fine.
                let _ = cell.set(value);
                absorbed += 1;
            }
            if inserted {
                shard.clock.push_back((fp, key));
                if self.cap.load(Ordering::Relaxed) != 0 {
                    shard.touched.insert((fp, key));
                }
                drop(shard);
                self.entries.fetch_add(1, Ordering::Relaxed);
                // Enforce as we go, not once at the end: warm-loading a
                // snapshot (much) larger than the cap must stream
                // through bounded occupancy, never peak at the full
                // file's size — that spike is exactly what `--cache-cap`
                // exists to prevent at startup.
                self.enforce_cap(home);
            }
        }
        absorbed
    }
}

impl<V: Clone + Serialize> MemoCache<V> {
    /// Persists the cache to `path` as JSON (atomic write via the
    /// checkpoint machinery).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be written.
    pub fn save_to(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::save(path, &self.snapshot())
    }
}

impl<V: Clone + Deserialize> MemoCache<V> {
    /// Warm-loads entries previously saved with [`MemoCache::save_to`].
    /// Returns how many entries were absorbed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Format`] if it does not decode as a snapshot.
    pub fn load_from(&self, path: &Path) -> Result<usize, CheckpointError> {
        let snapshot: CacheSnapshot<V> = checkpoint::load(path)?;
        Ok(self.absorb(snapshot))
    }
}

/// A serializable image of a [`MemoCache`]'s initialized entries: the
/// warm-start file format of `--cache-file`. Soundness carries over from
/// the cache itself — entries are pure functions of `(design fingerprint,
/// layer key)`, so absorbing a snapshot produced by any run with the same
/// fingerprinting scheme gives exactly the results a cold computation
/// would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot<V> {
    /// `(design fingerprint, layer shape, cached value)` triples.
    pub entries: Vec<(u64, LayerKey, V)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u64, k: u64) -> LayerKey {
        LayerKey {
            batch: 1,
            in_channels: c,
            out_channels: k,
            in_y: 8,
            in_x: 8,
            kernel_r: 3,
            kernel_s: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn hit_does_not_recompute() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 42), 42);
        assert_eq!(
            cache.get_or_compute(1, key(8, 8), || panic!("must not recompute")),
            42
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn design_levels_are_isolated() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.get_or_compute(1, key(8, 8), || 1), 1);
        assert_eq!(cache.get_or_compute(2, key(8, 8), || 2), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(1, &key(8, 8)), Some(1));
        assert_eq!(cache.peek(2, &key(8, 8)), Some(2));
        assert_eq!(cache.peek(3, &key(8, 8)), None);
    }

    #[test]
    fn concurrent_lookups_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache: MemoCache<u64> = MemoCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..100u64 {
                        let v = cache.get_or_compute(7, key(i, i), || {
                            runs.fetch_add(1, Ordering::Relaxed);
                            i * 3
                        });
                        assert_eq!(v, i * 3);
                    }
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(cache.len(), 100);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(1, 1), || 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_shape_same_key_distinct_fingerprints() {
        assert_eq!(key(4, 4), key(4, 4));
        assert_ne!(key(4, 4).fingerprint(), key(4, 5).fingerprint());
    }

    #[test]
    fn snapshot_roundtrips_through_absorb() {
        let cache: MemoCache<u64> = MemoCache::new();
        for i in 0..20u64 {
            cache.get_or_compute(i % 3, key(i, i), || i * 7);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.entries.len(), 20);

        let warm: MemoCache<u64> = MemoCache::new();
        assert_eq!(warm.absorb(snap), 20);
        assert_eq!(warm.len(), 20);
        for i in 0..20u64 {
            // Warm entries are served without running the computation.
            let v = warm.get_or_compute(i % 3, key(i, i), || panic!("must hit"));
            assert_eq!(v, i * 7);
        }
        assert_eq!(warm.stats().hits, 20);
    }

    #[test]
    fn absorb_never_overwrites_live_entries() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(2, 2), || 10);
        let stale = CacheSnapshot {
            entries: vec![(1, key(2, 2), 99), (1, key(3, 3), 30)],
        };
        assert_eq!(cache.absorb(stale), 1);
        assert_eq!(cache.peek(1, &key(2, 2)), Some(10));
        assert_eq!(cache.peek(1, &key(3, 3)), Some(30));
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let a: MemoCache<u64> = MemoCache::new();
        let b: MemoCache<u64> = MemoCache::new();
        for i in 0..32u64 {
            a.get_or_compute(i, key(i, 1), || i);
        }
        for i in (0..32u64).rev() {
            b.get_or_compute(i, key(i, 1), || i);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn journal_exports_only_entries_computed_after_enabling() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(1, key(1, 1), || 10); // pre-journal: not exported
        cache.enable_journal();
        cache.enable_journal(); // idempotent
        cache.get_or_compute(1, key(2, 2), || 20);
        cache.get_or_compute(1, key(2, 2), || panic!("hit, not journaled twice"));
        cache.get_or_compute(2, key(3, 3), || 30);
        let delta = cache.take_new_entries();
        assert_eq!(delta.entries.len(), 2);
        assert!(delta
            .entries
            .iter()
            .any(|(fp, k, v)| (*fp, *k, *v) == (1, key(2, 2), 20)));
        assert!(delta
            .entries
            .iter()
            .any(|(fp, k, v)| (*fp, *k, *v) == (2, key(3, 3), 30)));
        // Drained: the next delta is empty until new work is computed.
        assert!(cache.take_new_entries().entries.is_empty());
        cache.get_or_compute(3, key(4, 4), || 40);
        assert_eq!(cache.take_new_entries().entries.len(), 1);
    }

    #[test]
    fn absorbed_entries_are_not_journaled() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.enable_journal();
        cache.absorb(CacheSnapshot {
            entries: vec![(7, key(5, 5), 50)],
        });
        assert!(
            cache.take_new_entries().entries.is_empty(),
            "absorbed entries came from elsewhere and must not be re-exported"
        );
        // But a journal-off cache exports nothing either.
        let off: MemoCache<u64> = MemoCache::new();
        off.get_or_compute(1, key(1, 1), || 1);
        assert!(off.take_new_entries().entries.is_empty());
    }

    #[test]
    fn entry_cap_is_never_exceeded() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_entry_cap(8);
        assert_eq!(cache.entry_cap(), 8);
        for i in 0..100u64 {
            cache.get_or_compute(i, key(i, i), || i);
            assert!(
                cache.len() <= 8,
                "cap violated after insert {i}: {} entries",
                cache.len()
            );
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 92);
        // Evicted entries recompute (and are counted as misses again);
        // resident ones still hit.
        let stats = cache.stats();
        assert_eq!(stats.misses, 100);
        assert_eq!(stats.entries, 8);
    }

    #[test]
    fn recently_touched_entries_survive_eviction_pressure() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_entry_cap(16);
        // A hot working set, touched between every burst of one-off keys.
        let hot: Vec<LayerKey> = (0..4).map(|i| key(1000 + i, 1)).collect();
        for (i, k) in hot.iter().enumerate() {
            cache.get_or_compute(0, *k, || i as u64);
        }
        let mut hot_recomputes = 0u64;
        for burst in 0..20u64 {
            for (i, k) in hot.iter().enumerate() {
                let v = cache.get_or_compute(0, *k, || {
                    hot_recomputes += 1;
                    i as u64
                });
                assert_eq!(v, i as u64, "an evicted key recomputes the same value");
            }
            for j in 0..8u64 {
                let cold = 100 + burst * 8 + j;
                cache.get_or_compute(cold, key(cold, cold), || cold);
            }
        }
        assert!(cache.len() <= 16);
        // The reference bits keep the hot set mostly resident: out of 80
        // hot lookups under constant churn, the vast majority still hit
        // (the cap costs recomputation at the margin, not the hit rate).
        assert!(
            hot_recomputes <= 20,
            "hot set thrashed: {hot_recomputes}/80 recomputed, stats {:?}",
            cache.stats()
        );
        assert!(cache.stats().hits >= 60, "stats: {:?}", cache.stats());
    }

    #[test]
    fn cap_respected_under_concurrent_inserts() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_entry_cap(32);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        cache.get_or_compute(k, key(k, k), || k);
                    }
                });
            }
        });
        assert!(
            cache.len() <= 32,
            "cap violated at quiescence: {} entries",
            cache.len()
        );
    }

    #[test]
    fn capped_cache_roundtrips_through_persistence() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_entry_cap(8);
        for i in 0..50u64 {
            cache.get_or_compute(i, key(i, i), || i * 3);
        }
        let path =
            std::env::temp_dir().join(format!("naas-capped-cache-{}.json", std::process::id()));
        cache.save_to(&path).unwrap();

        // The snapshot holds only the resident (≤ cap) entries, and a
        // capped cache absorbing an oversized snapshot enforces the cap
        // while streaming it in.
        let resident = cache.snapshot();
        assert!(resident.entries.len() <= 8);
        let warm: MemoCache<u64> = MemoCache::new();
        warm.set_entry_cap(4);
        warm.load_from(&path).unwrap();
        assert!(warm.len() <= 4, "absorb must honour the cap");
        for (fp, k, v) in &warm.snapshot().entries {
            // Whatever survived still answers exactly what was saved.
            assert_eq!(warm.peek(*fp, k), Some(*v));
            assert_eq!(*v, fp * 3);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_drain_compacts_recomputed_keys() {
        // Cap 1 forces the same key to be evicted and recomputed; the
        // drain must export it once, with its live value.
        let cache: MemoCache<u64> = MemoCache::new();
        cache.set_entry_cap(1);
        cache.enable_journal();
        for round in 0..3u64 {
            cache.get_or_compute(1, key(1, 1), || 10);
            cache.get_or_compute(2, key(2, 2), || 20 + round);
        }
        let delta = cache.take_new_entries();
        let mut keys: Vec<u64> = delta.entries.iter().map(|(fp, ..)| *fp).collect();
        keys.dedup();
        assert_eq!(
            keys.len(),
            delta.entries.len(),
            "drain must dedupe recomputed keys: {:?}",
            delta.entries
        );
        // Only still-resident values export (evicted keys have nothing
        // to ship); every exported value is the live one.
        for (fp, k, v) in &delta.entries {
            assert_eq!(cache.peek(*fp, k), Some(*v));
        }
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let cache: MemoCache<u64> = MemoCache::new();
        cache.get_or_compute(5, key(8, 16), || 123);
        cache.get_or_compute(6, key(4, 4), || 456);
        let path =
            std::env::temp_dir().join(format!("naas-engine-cache-{}.json", std::process::id()));
        cache.save_to(&path).unwrap();
        let warm: MemoCache<u64> = MemoCache::new();
        assert_eq!(warm.load_from(&path).unwrap(), 2);
        assert_eq!(warm.peek(5, &key(8, 16)), Some(123));
        assert_eq!(warm.peek(6, &key(4, 4)), Some(456));
        std::fs::remove_file(&path).ok();
    }
}
