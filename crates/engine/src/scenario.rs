//! Declarative evaluation scenarios.
//!
//! A [`Scenario`] names a workload — benchmark networks, a resource
//! envelope, a seed — as plain data (serde-serializable, so scenarios can
//! also be loaded from JSON files). [`Scenario::resolve`] turns the names
//! into an [`EvalJob`] with constructed networks and constraints. New
//! workloads are *registered*, not programmed: adding a deployment target
//! is one [`Scenario`] literal (or JSON file), not a copied experiment
//! driver.
//!
//! The built-in [`registry`] covers the paper's deployment scenarios
//! (Fig. 5's five envelopes with their benchmark suites) plus the CIFAR
//! workloads used by the Table III comparison.

use naas_accel::{baselines, Accelerator, ResourceConstraint};
use naas_ir::{models, Network};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A benchmark network, by zoo name and input resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Model-zoo name (e.g. `"mobilenet_v2"`). See [`NetworkSpec::build`]
    /// for the accepted set.
    pub model: String,
    /// Input resolution; ignored by the fixed-resolution CIFAR models.
    pub resolution: u64,
}

impl NetworkSpec {
    /// Shorthand constructor.
    pub fn new(model: &str, resolution: u64) -> Self {
        NetworkSpec {
            model: model.to_string(),
            resolution,
        }
    }

    /// Constructs the network, or `None` for an unknown model name.
    pub fn build(&self) -> Option<Network> {
        let r = self.resolution;
        Some(match self.model.as_str() {
            "mobilenet_v2" => models::mobilenet_v2(r),
            "squeezenet" => models::squeezenet(r),
            "mnasnet" => models::mnasnet(r),
            "resnet50" => models::resnet50(r),
            "vgg16" => models::vgg16(r),
            "unet" => models::unet(r),
            "cifar_resnet20" => models::cifar_resnet20(),
            "nasaic_cifar_net" => models::nasaic_cifar_net(),
            _ => return None,
        })
    }
}

/// A declaratively-registered evaluation workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique scenario name (CLI handle).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// Benchmark networks the reward aggregates over.
    pub networks: Vec<NetworkSpec>,
    /// Baseline design whose resources define the envelope (e.g.
    /// `"Eyeriss"`, `"NVDLA-256"`); matched case-insensitively against
    /// the baseline zoo.
    pub envelope: String,
    /// Warm-start the search from the envelope's source design.
    pub warm_start: bool,
    /// Default RNG seed (CLI-overridable).
    pub seed: u64,
}

/// A resolved scenario: constructed networks and constraint, ready to
/// hand to a search loop.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The scenario this job came from.
    pub scenario: Scenario,
    /// Constructed benchmark networks, in scenario order.
    pub networks: Vec<Network>,
    /// The envelope's source design.
    pub baseline: Accelerator,
    /// The resource envelope.
    pub constraint: ResourceConstraint,
}

/// Why a scenario could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A network name is not in the model zoo.
    UnknownModel(String),
    /// The envelope name is not in the baseline zoo.
    UnknownEnvelope(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            ScenarioError::UnknownEnvelope(e) => write!(f, "unknown envelope `{e}`"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Finds a baseline design by (case-insensitive) name.
pub fn baseline_by_name(name: &str) -> Option<Accelerator> {
    baselines::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

impl Scenario {
    /// Builds the networks and the envelope this scenario names.
    pub fn resolve(&self) -> Result<EvalJob, ScenarioError> {
        let networks = self
            .networks
            .iter()
            .map(|spec| {
                spec.build()
                    .ok_or_else(|| ScenarioError::UnknownModel(spec.model.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let baseline = baseline_by_name(&self.envelope)
            .ok_or_else(|| ScenarioError::UnknownEnvelope(self.envelope.clone()))?;
        let constraint = ResourceConstraint::from_design(&baseline);
        Ok(EvalJob {
            scenario: self.clone(),
            networks,
            baseline,
            constraint,
        })
    }
}

/// The built-in scenario registry.
pub fn registry() -> Vec<Scenario> {
    let mobile = vec![
        NetworkSpec::new("mobilenet_v2", 224),
        NetworkSpec::new("squeezenet", 224),
        NetworkSpec::new("mnasnet", 224),
    ];
    let large = vec![
        NetworkSpec::new("vgg16", 224),
        NetworkSpec::new("resnet50", 224),
        NetworkSpec::new("unet", 224),
    ];
    let mut scenarios = Vec::new();
    for envelope in ["EdgeTPU", "NVDLA-1024"] {
        scenarios.push(Scenario {
            name: format!("large-{}", envelope.to_ascii_lowercase()),
            description: format!("large benchmark suite within {envelope} resources (Fig. 5)"),
            networks: large.clone(),
            envelope: envelope.to_string(),
            warm_start: true,
            seed: 2021,
        });
    }
    for envelope in ["Eyeriss", "NVDLA-256", "ShiDianNao"] {
        scenarios.push(Scenario {
            name: format!("mobile-{}", envelope.to_ascii_lowercase()),
            description: format!("mobile benchmark suite within {envelope} resources (Fig. 5)"),
            networks: mobile.clone(),
            envelope: envelope.to_string(),
            warm_start: true,
            seed: 2021,
        });
    }
    scenarios.push(Scenario {
        name: "cifar-nvdla-1024".to_string(),
        description: "NASAIC's CIFAR workload within NVDLA-1024 resources (Table III)".to_string(),
        networks: vec![NetworkSpec::new("nasaic_cifar_net", 32)],
        envelope: "NVDLA-1024".to_string(),
        warm_start: false,
        seed: 2021,
    });
    scenarios.push(Scenario {
        name: "cifar-eyeriss".to_string(),
        description: "CIFAR ResNet-20 within Eyeriss resources (smoke-scale)".to_string(),
        networks: vec![NetworkSpec::new("cifar_resnet20", 32)],
        envelope: "Eyeriss".to_string(),
        warm_start: true,
        seed: 2021,
    });
    scenarios
}

/// Looks a built-in scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_scenario_resolves() {
        let scenarios = registry();
        assert!(scenarios.len() >= 7);
        for s in scenarios {
            let job = s
                .resolve()
                .unwrap_or_else(|e| panic!("scenario {}: {e}", s.name));
            assert_eq!(job.networks.len(), s.networks.len());
            assert!(job.constraint.admits(&job.baseline).is_ok());
        }
    }

    #[test]
    fn names_are_unique() {
        let scenarios = registry();
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut s = find("cifar-eyeriss").expect("registered");
        s.networks[0].model = "transformer_xxl".to_string();
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::UnknownModel("transformer_xxl".to_string())
        );
        let mut s = find("cifar-eyeriss").unwrap();
        s.envelope = "TPUv5".to_string();
        assert_eq!(
            s.resolve().unwrap_err(),
            ScenarioError::UnknownEnvelope("TPUv5".to_string())
        );
    }

    #[test]
    fn scenarios_roundtrip_through_json() {
        let s = find("mobile-eyeriss").unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
