//! # naas-engine — search orchestration for the NAAS co-search
//!
//! The shared execution substrate under every search loop in this
//! repository (`naas::accel_search`, `naas::joint`, the baselines, and
//! the `naas-bench` experiment drivers):
//!
//! * [`pool`] — a work-stealing parallel evaluator returning results in
//!   job order, so every caller is deterministic by construction at any
//!   thread count (`0` = all cores);
//! * [`cache`] — a concurrent two-level content-addressed memo cache,
//!   design fingerprint × [`cache::LayerKey`] → inner-search result,
//!   shared across a population, across generations, and across whole
//!   searches;
//! * [`mod@fingerprint`] — stable content hashes and the content-derived
//!   seeding rule that makes the cache sound (a cached result is a pure
//!   function of its key);
//! * [`checkpoint`] — atomic JSON save/load of serializable search
//!   state, restoring searches bit-exactly after interruption;
//! * [`scenario`] — declaratively registered evaluation workloads
//!   resolved into networks + resource envelopes;
//! * [`service`] — the JSON-lines wire protocol and the coalescing
//!   request [`Batcher`] under the batch-evaluation service mode
//!   (`naas-search serve`);
//! * [`remote`] — the client side of the same wire protocol: a blocking
//!   JSONL RPC handle on a remote worker process, under the distributed
//!   search coordinator (`naas-search run --workers`);
//! * [`telemetry`] — passive fleet observability: a process-global
//!   registry of atomic counters/gauges/histograms with a serializable
//!   snapshot (the `metrics` service command), and a structured JSONL
//!   event log behind the human-readable stderr messages.
//!
//! The engine deliberately knows nothing about *what* is being searched:
//! it moves job indices, hashes serialized content, and stores opaque
//! values. The co-search semantics (encodings, rewards, optimizers) stay
//! in `naas`, which keeps the dependency arrow pointing one way and lets
//! the same machinery drive mapping searches, NAS evolutions and
//! batch-evaluation services alike.
//!
//! ```
//! use naas_engine::prelude::*;
//!
//! // Order-preserving parallel evaluation with a shared memo cache.
//! let cache: MemoCache<u64> = MemoCache::new();
//! let jobs: Vec<u64> = (0..32).collect();
//! let results = parallel_map(0, &jobs, |_idx, &job| {
//!     let key = LayerKey::of(
//!         &naas_ir::ConvSpec::conv2d("l", 8, 8, (8, 8), (3, 3), 1, 1).unwrap(),
//!     );
//!     cache.get_or_compute(job % 4, key, || job % 4)
//! });
//! assert_eq!(results.len(), 32);
//! assert!(cache.stats().hit_rate() > 0.5);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod fingerprint;
pub mod pool;
pub mod remote;
pub mod scenario;
pub mod service;
pub mod telemetry;

pub use cache::{CacheSnapshot, CacheStats, LayerKey, MemoCache};
pub use checkpoint::{CheckpointError, CheckpointPolicy};
pub use fingerprint::{derive_seed, fingerprint};
pub use pool::{parallel_map, resolve_threads};
pub use remote::{RemoteError, RemoteWorker};
pub use scenario::{EvalJob, NetworkSpec, Scenario, ScenarioError};
pub use service::{Batcher, ParseFailure, Request, PROTOCOL_VERSION};
pub use telemetry::{EventLog, Level, Metrics, MetricsSnapshot};

/// Convenience re-exports for engine users.
pub mod prelude {
    pub use crate::cache::{CacheSnapshot, CacheStats, LayerKey, MemoCache};
    pub use crate::checkpoint::CheckpointPolicy;
    pub use crate::fingerprint::{derive_seed, fingerprint};
    pub use crate::pool::{parallel_map, resolve_threads};
    pub use crate::scenario::{EvalJob, NetworkSpec, Scenario};
    pub use crate::telemetry::{events, metrics, Level, MetricsSnapshot};
}
