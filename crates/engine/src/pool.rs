//! Work-stealing parallel evaluation.
//!
//! The engine's only threading primitive: [`parallel_map`] fans a slice
//! of jobs out over a worker pool and returns results **in job order**,
//! so callers are deterministic by construction regardless of thread
//! count or scheduling. Unlike static chunking (what
//! `accel_search.rs` used to hand-roll), idle workers steal work, so one
//! expensive candidate — a big network, a pathological design — no longer
//! serializes its whole chunk behind it.
//!
//! Implementation: each worker owns a deque seeded round-robin; it pops
//! from the front of its own deque and, when empty, steals the back half
//! of the fullest sibling deque. Job indices (not results) move between
//! threads; results are written keyed by index, which is what makes the
//! output order — and therefore every downstream tie-break — independent
//! of scheduling.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

/// Locks a deque, tolerating poison: the protected value is a plain
/// queue of job indices, which is structurally valid even if some thread
/// died mid-operation — treating poison as fatal here would kill sibling
/// workers and mask the root-cause panic behind a generic
/// `PoisonError` message.
fn lock_deque<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What one worker produced for one job: the result, or the panic
/// payload its `f` escaped with.
type JobOutcome<R> = (usize, Result<R, Box<dyn std::any::Any + Send>>);

/// Resolves a requested worker count: `0` means "all cores", anything
/// else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every job and returns the results in job order.
///
/// `threads` is resolved via [`resolve_threads`]; with one worker (or at
/// most one job) the map runs inline with no thread overhead. `f`
/// receives the job index alongside the job so callers can derive
/// per-slot state (seeds, labels) without captures.
///
/// # Panics
///
/// With multiple workers, if `f` panics for one or more jobs the
/// remaining jobs still run to completion on their workers (no sibling
/// dies on a poisoned deque), and the payload of the panic with the
/// **lowest job index** is re-raised on the calling thread —
/// deterministic, and never masked by a secondary `PoisonError`. On the
/// single-worker inline path the panic propagates immediately (scalar
/// loop semantics), so later jobs do not run; callers must not rely on
/// sibling jobs' side effects surviving a panic. Callers that must not
/// abort at all (the batch-evaluation service) wrap `f` in
/// `std::panic::catch_unwind` themselves and turn payloads into error
/// values.
pub fn parallel_map<J, R, F>(threads: usize, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let pool_metrics = &crate::telemetry::metrics().pool;
    pool_metrics.jobs.add(jobs.len() as u64);
    let workers = resolve_threads(threads).min(jobs.len().max(1));
    if workers <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let start = std::time::Instant::now();
                let result = f(i, j);
                pool_metrics.job_latency.observe_duration(start.elapsed());
                result
            })
            .collect();
    }

    // Round-robin initial distribution.
    let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for idx in 0..jobs.len() {
        deques[idx % workers].push_back(idx);
    }
    let deques: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();

    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    // The first panic payload by job index, re-raised after the scope.
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let deques = &deques;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<JobOutcome<R>> = Vec::new();
                loop {
                    let idx = pop_own(&deques[me]).or_else(|| steal(deques, me));
                    match idx {
                        // Contain a panicking job to its slot: siblings
                        // keep draining the queue and the payload is
                        // re-raised (or converted by service callers)
                        // once every job has run.
                        Some(idx) => {
                            let start = std::time::Instant::now();
                            let outcome = catch_unwind(AssertUnwindSafe(|| f(idx, &jobs[idx])));
                            pool_metrics.job_latency.observe_duration(start.elapsed());
                            if outcome.is_err() {
                                pool_metrics.panics.inc();
                            }
                            produced.push((idx, outcome));
                        }
                        // A failed steal can race a victim that drained
                        // between the length scan and the split; retire
                        // only once every deque is actually empty, so no
                        // worker quits while queued work remains.
                        None if deques.iter().all(|d| lock_deque(d).is_empty()) => {
                            break;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                produced
            }));
        }
        for handle in handles {
            for (idx, result) in handle.join().expect("engine worker panicked") {
                match result {
                    Ok(value) => slots[idx] = Some(value),
                    Err(payload) => {
                        if first_panic.as_ref().is_none_or(|(first, _)| idx < *first) {
                            first_panic = Some((idx, payload));
                        }
                    }
                }
            }
        }
    });
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

fn pop_own(deque: &Mutex<VecDeque<usize>>) -> Option<usize> {
    lock_deque(deque).pop_front()
}

/// Steals the back half of the fullest sibling deque into `deques[me]`
/// and returns one stolen job.
fn steal(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    let victim = deques
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != me)
        .max_by_key(|(_, d)| lock_deque(d).len())?
        .0;
    let mut loot: VecDeque<usize> = {
        let mut victim_deque = lock_deque(&deques[victim]);
        let keep = victim_deque.len().div_ceil(2);
        victim_deque.split_off(keep)
    };
    let first = loot.pop_front()?;
    if !loot.is_empty() {
        let mut own = lock_deque(&deques[me]);
        own.extend(loot);
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order_at_any_thread_count() {
        let jobs: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, &jobs, |_, &j| j * j);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let jobs: Vec<usize> = (0..200).collect();
        let runs = AtomicUsize::new(0);
        let got = parallel_map(7, &jobs, |idx, &j| {
            runs.fetch_add(1, Ordering::Relaxed);
            assert_eq!(idx, j);
            idx
        });
        assert_eq!(runs.load(Ordering::Relaxed), 200);
        assert_eq!(got, jobs);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathologically slow job at index 0 (the first worker's
        // deque): the other workers must still drain everything else.
        let jobs: Vec<u64> = (0..32).collect();
        let got = parallel_map(4, &jobs, |_, &j| {
            if j == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            j + 1
        });
        assert_eq!(got, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let got = parallel_map(0, &[1, 2, 3], |_, &j| j * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(4, &empty, |_, &j| j).is_empty());
        assert_eq!(parallel_map(4, &[5u32], |_, &j| j + 1), vec![6]);
    }

    #[test]
    fn panicking_job_reraises_original_payload() {
        // Regression: a panicking job used to poison the worker deques,
        // killing siblings on `expect("worker deque poisoned")` and
        // masking the root cause. The original payload must surface.
        let jobs: Vec<u64> = (0..64).collect();
        let ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(4, &jobs, |_, &j| {
                ran.fetch_add(1, Ordering::Relaxed);
                if j == 13 {
                    panic!("job 13 exploded");
                }
                j
            })
        }))
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload is the original message");
        assert_eq!(msg, "job 13 exploded");
        // Siblings kept draining the queue: every job ran.
        assert_eq!(ran.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn first_panic_by_job_index_wins() {
        // With several panicking jobs, the re-raised payload is the one
        // with the lowest job index — deterministic at any thread count.
        for threads in [2, 4, 8] {
            let jobs: Vec<u64> = (0..40).collect();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                parallel_map(threads, &jobs, |_, &j| {
                    if j % 7 == 3 {
                        panic!("boom at {j}");
                    }
                    j
                })
            }))
            .expect_err("panic must propagate");
            let msg = caught
                .downcast_ref::<String>()
                .cloned()
                .expect("formatted payload");
            assert_eq!(msg, "boom at 3", "threads = {threads}");
        }
    }

    #[test]
    fn single_worker_inline_path_propagates_panics_too() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(1, &[1u32, 2, 3], |_, &j| {
                if j == 2 {
                    panic!("inline boom");
                }
                j
            })
        })
        .expect_err("panic must propagate");
        assert_eq!(*caught.downcast_ref::<&str>().unwrap(), "inline boom");
    }
}
