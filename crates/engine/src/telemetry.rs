//! Passive fleet telemetry: a metrics registry and a structured event log.
//!
//! Week-long distributed runs need answers to "is the fleet healthy,
//! where is the time going, is the cache working?" without anyone
//! reading stderr prose. This module provides the measurement layer:
//!
//! * a process-global **metrics registry** ([`metrics`]) of atomic
//!   counters, gauges, and fixed-bucket histograms covering the hot
//!   seams (worker pool, service batcher, evaluation pipeline, RPC
//!   client, distributed coordinator), snapshottable into a plain
//!   serializable tree ([`MetricsSnapshot`]) that travels over the
//!   wire as the `metrics` service command;
//! * a process-global **event log** ([`events`]) that renders
//!   human-readable messages to stderr (exactly what the old ad-hoc
//!   `eprintln!` calls printed) while also emitting one JSON object
//!   per event — level, event name, typed fields, timestamp — to an
//!   optional JSONL sink (`--metrics-file`), so fleet logs become
//!   grep/jq-able.
//!
//! **Telemetry is passive by construction.** Counters are relaxed
//! atomics, clocks are only ever *read* (for timestamps and latency
//! buckets), and nothing here feeds the RNG, candidate ordering, or
//! any other search-visible state. The bit-identity fixtures run green
//! with every instrument enabled; a test enforces this.
//!
//! Everything is dependency-free and vendored-workspace-compatible:
//! the only imports are `std` and the in-repo serde shim.

use crate::cache::MemoCache;
use serde::{Deserialize, Serialize, Value};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written-value instrument with a high-water-mark variant.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value
    /// (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket edges (microseconds) for latency histograms: 100 µs to one
/// minute, roughly 2.5× apart, plus an implicit overflow bucket.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Bucket edges (counts) for size histograms such as coalesced batch
/// sizes: powers of two up to 1024, plus an implicit overflow bucket.
pub const SIZE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are *inclusive upper edges*: an observation `v` lands in the
/// first bucket whose edge satisfies `v <= edge`, or in the trailing
/// overflow bucket when `v` exceeds the last edge. All updates are
/// relaxed atomics; a [`Histogram::snapshot`] taken mid-update is
/// internally consistent enough for monitoring (counts and sum are
/// read independently, never torn per-field).
#[derive(Debug)]
pub struct Histogram {
    edges: &'static [u64],
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given static bucket edges (must be sorted
    /// ascending; one extra overflow bucket is added internally).
    pub fn new(edges: &'static [u64]) -> Self {
        let counts = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges,
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let bucket = self.edges.partition_point(|&edge| edge < v);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a week of observations cannot
        // overflow u64 microseconds, but a hostile input should not
        // corrupt the sum either.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a wall-clock duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.total.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A label → histogram map for low-cardinality labelled latency, e.g.
/// per-worker RPC time keyed by worker address.
#[derive(Debug)]
pub struct HistogramFamily {
    edges: &'static [u64],
    members: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl HistogramFamily {
    /// An empty family whose members share the given bucket edges.
    pub fn new(edges: &'static [u64]) -> Self {
        Self {
            edges,
            members: Mutex::new(Vec::new()),
        }
    }

    /// The histogram for `label`, created on first use.
    pub fn get(&self, label: &str) -> Arc<Histogram> {
        let mut members = lock(&self.members);
        if let Some((_, h)) = members.iter().find(|(l, _)| l == label) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(self.edges));
        members.push((label.to_string(), Arc::clone(&h)));
        h
    }

    /// Point-in-time copy of every member, sorted by label.
    pub fn snapshot(&self) -> Vec<LabeledHistogramSnapshot> {
        let mut out: Vec<LabeledHistogramSnapshot> = lock(&self.members)
            .iter()
            .map(|(label, h)| LabeledHistogramSnapshot {
                label: label.clone(),
                histogram: h.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }
}

/// A label → gauge map for low-cardinality labelled values, e.g. the
/// per-worker share of a generation's candidates keyed by address.
#[derive(Debug)]
pub struct GaugeFamily {
    members: Mutex<Vec<(String, Arc<Gauge>)>>,
}

impl GaugeFamily {
    /// An empty family.
    pub fn new() -> Self {
        Self {
            members: Mutex::new(Vec::new()),
        }
    }

    /// The gauge for `label`, created on first use.
    pub fn get(&self, label: &str) -> Arc<Gauge> {
        let mut members = lock(&self.members);
        if let Some((_, g)) = members.iter().find(|(l, _)| l == label) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        members.push((label.to_string(), Arc::clone(&g)));
        g
    }

    /// Point-in-time copy of every member, sorted by label.
    pub fn snapshot(&self) -> Vec<LabeledGauge> {
        let mut out: Vec<LabeledGauge> = lock(&self.members)
            .iter()
            .map(|(label, g)| LabeledGauge {
                label: label.clone(),
                value: g.get(),
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }
}

impl Default for GaugeFamily {
    fn default() -> Self {
        Self::new()
    }
}

/// Locks a mutex, tolerating poisoning (telemetry must never be the
/// thing that turns a contained panic into a cascade).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Snapshot tree (serializable via the in-repo serde shim)
// ---------------------------------------------------------------------------

/// Serializable copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges; `counts` has one extra trailing
    /// overflow bucket.
    pub edges: Vec<u64>,
    /// Per-bucket observation counts (`edges.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 before the first observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One labelled member of a [`HistogramFamily`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LabeledHistogramSnapshot {
    /// The member label (for RPC latency: the worker address).
    pub label: String,
    /// That member's histogram.
    pub histogram: HistogramSnapshot,
}

/// One labelled member of a [`GaugeFamily`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LabeledGauge {
    /// The member label (for worker share: the worker address).
    pub label: String,
    /// The gauge's value at snapshot time.
    pub value: u64,
}

/// Memo-cache counters as exposed over the wire: the per-instance
/// counters [`MemoCache`] already keeps, plus the derived hit rate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Resident entries right now.
    pub entries: u64,
    /// Entries evicted by the `--cache-cap` CLOCK sweep.
    pub evictions: u64,
    /// `hits / (hits + misses)`, 0.0 before the first lookup.
    pub hit_rate: f64,
}

/// Reads the counters of a [`MemoCache`] into a [`CacheCounters`].
pub fn cache_counters<V>(cache: &MemoCache<V>) -> CacheCounters {
    let stats = cache.stats();
    CacheCounters {
        hits: stats.hits,
        misses: stats.misses,
        entries: stats.entries,
        evictions: cache.evictions(),
        hit_rate: stats.hit_rate(),
    }
}

/// Snapshot of the worker-pool section.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Jobs executed by `parallel_map` (both inline and pooled paths).
    pub jobs: u64,
    /// Jobs whose closure panicked (contained by the pool).
    pub panics: u64,
    /// Per-job wall time, microseconds.
    pub job_latency_us: HistogramSnapshot,
}

/// Snapshot of the service-batcher section.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BatcherSnapshot {
    /// Coalesced batches drained by the scheduler.
    pub batches: u64,
    /// Individual requests that travelled inside those batches.
    pub requests: u64,
    /// Distribution of coalesced batch sizes.
    pub batch_size: HistogramSnapshot,
    /// Deepest the queue has ever been (high-water mark).
    pub max_queue_depth: u64,
}

/// Snapshot of the evaluation-pipeline section.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// Candidate evaluations performed (every draw, including retries).
    pub evaluations: u64,
    /// Invalid draws that forced a resample.
    pub resamples: u64,
}

/// Snapshot of the distributed-coordination section. All zeros in a
/// process that never coordinated or issued RPCs (e.g. a worker).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoordinatorSnapshot {
    /// Generations the coordinator has completed.
    pub generations: u64,
    /// Per-generation wall time, microseconds.
    pub generation_wall_us: HistogramSnapshot,
    /// Remote calls issued by this process (all commands).
    pub rpcs: u64,
    /// Per-call wall time across all workers, microseconds.
    pub rpc_latency_us: HistogramSnapshot,
    /// Per-call wall time split by worker address.
    pub per_worker_rpc_us: Vec<LabeledHistogramSnapshot>,
    /// Shards re-routed after a worker failure or rejection.
    pub reissues: u64,
    /// Dead workers re-admitted into the shard plan.
    pub rejoins: u64,
    /// Workers dropped from the live plan (death or version ban).
    pub deaths: u64,
    /// Cache delta entries gossiped out to workers.
    pub deltas_gossiped: u64,
    /// Micro-shard requests issued by the dynamic scheduler.
    pub microshards: u64,
    /// Micro-shards stolen from a straggler's un-issued queue tail.
    pub steals: u64,
    /// Stolen tail ranges split down to the stealer's fair chunk.
    pub resplits: u64,
    /// In-flight shards speculatively re-issued past the deadline.
    pub speculations: u64,
    /// Late answers from the losing copy of a speculated shard,
    /// dropped by shard id instead of failing the worker.
    pub duplicate_replies: u64,
    /// Per-worker share of the last generation's candidates, in
    /// per-mille of the population — the scheduler's utilization /
    /// busy-fraction view (a straggler's share sinks as the fleet
    /// steals its queue).
    pub worker_share_permille: Vec<LabeledGauge>,
    /// Candidates that entered the Pareto archive (Pareto mode only).
    pub pareto_inserts: u64,
    /// Candidates rejected as dominated by the archived front.
    pub pareto_rejections: u64,
    /// Current size of the Pareto front.
    pub pareto_front_size: u64,
    /// Hypervolume of the front against the fixed reference point,
    /// encoded as raw `f64` bits (`f64::to_bits`) so the snapshot stays
    /// `Eq`-comparable; decode with `f64::from_bits`.
    pub pareto_hypervolume_bits: u64,
    /// Speculative next-generation asks fired by the overlap reactor.
    pub overlap_asks: u64,
    /// Speculative asks rolled back (mispredicted trajectory, evicted
    /// fork, or a search that finished under a banked ask).
    pub overlap_rollbacks: u64,
    /// Milliseconds of speculative work overlapped with a primary
    /// generation's in-flight tail.
    pub overlap_ms: u64,
    /// Sub-candidate joint work units merged (`joint_unit` wire mode).
    pub joint_units: u64,
}

/// Snapshot of the multi-tenant gateway section. All zeros in a
/// process that never ran `naas-search gateway` (a worker, a plain
/// `serve`). Protocol v4 made this section a required part of every
/// serialized snapshot — see `naas_engine::service::PROTOCOL_VERSION`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GatewaySnapshot {
    /// Jobs accepted by `job_submit` (lifetime total).
    pub jobs_submitted: u64,
    /// Submissions refused with `rejected:over_capacity`.
    pub jobs_rejected: u64,
    /// Jobs that reached `done`.
    pub jobs_completed: u64,
    /// Jobs that reached `cancelled`.
    pub jobs_cancelled: u64,
    /// Jobs that reached `failed`.
    pub jobs_failed: u64,
    /// Search generations stepped on behalf of any job.
    pub job_generations: u64,
    /// Jobs currently holding an executor (point-in-time).
    pub jobs_running: u64,
    /// Jobs resident but not running: queued or checkpointed between
    /// generations (point-in-time).
    pub jobs_queued: u64,
    /// Generations stepped per tenant, keyed by tenant name.
    pub tenant_generations: Vec<LabeledGauge>,
}

/// One point-in-time copy of the whole registry, plus the counters of
/// the process's memo cache. This is the payload of the `metrics`
/// service command and of each `--metrics-file` snapshot line.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Memo-cache counters (per-instance, passed in by the caller).
    pub cache: CacheCounters,
    /// Worker-pool counters.
    pub pool: PoolSnapshot,
    /// Service-batcher counters.
    pub batcher: BatcherSnapshot,
    /// Evaluation-pipeline counters.
    pub pipeline: PipelineSnapshot,
    /// Distributed-coordination counters.
    pub coordinator: CoordinatorSnapshot,
    /// Multi-tenant gateway counters.
    pub gateway: GatewaySnapshot,
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// Worker-pool instruments (see [`crate::pool::parallel_map`]).
#[derive(Debug)]
pub struct PoolMetrics {
    /// Jobs executed.
    pub jobs: Counter,
    /// Contained job panics.
    pub panics: Counter,
    /// Per-job wall time.
    pub job_latency: Histogram,
}

/// Service-batcher instruments (see [`crate::service::Batcher`]).
#[derive(Debug)]
pub struct BatcherMetrics {
    /// Batches drained.
    pub batches: Counter,
    /// Requests coalesced into those batches.
    pub requests: Counter,
    /// Batch-size distribution.
    pub batch_size: Histogram,
    /// Queue-depth high-water mark.
    pub max_queue_depth: Gauge,
}

/// Evaluation-pipeline instruments (updated by `naas::pipeline`).
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    /// Candidate evaluations (every draw).
    pub evaluations: Counter,
    /// Invalid draws that forced a resample.
    pub resamples: Counter,
}

/// Distributed-coordination instruments (updated by the RPC client in
/// this crate and by `naas::distributed`).
#[derive(Debug)]
pub struct CoordinatorMetrics {
    /// Completed generations.
    pub generations: Counter,
    /// Per-generation wall time.
    pub generation_wall: Histogram,
    /// Remote calls issued.
    pub rpcs: Counter,
    /// Per-call wall time, all workers pooled.
    pub rpc_latency: Histogram,
    /// Per-call wall time keyed by worker address.
    pub per_worker_rpc: HistogramFamily,
    /// Shards re-routed after a failure or rejection.
    pub reissues: Counter,
    /// Dead workers re-admitted.
    pub rejoins: Counter,
    /// Workers dropped from the live plan.
    pub deaths: Counter,
    /// Cache delta entries gossiped to workers.
    pub deltas_gossiped: Counter,
    /// Micro-shard requests issued by the dynamic scheduler.
    pub microshards: Counter,
    /// Micro-shards stolen from a straggler's queue tail.
    pub steals: Counter,
    /// Stolen ranges split down to the stealer's fair chunk.
    pub resplits: Counter,
    /// In-flight shards speculatively re-issued past the deadline.
    pub speculations: Counter,
    /// Late losing answers of speculated shards, dropped by id.
    pub duplicate_replies: Counter,
    /// Per-worker share of the last generation's candidates (per-mille),
    /// keyed by worker address.
    pub worker_share: GaugeFamily,
    /// Candidates that entered the Pareto archive (Pareto mode only —
    /// stays zero in scalar runs).
    pub pareto_inserts: Counter,
    /// Candidates rejected as dominated by (or equal to) the front.
    pub pareto_rejections: Counter,
    /// Current Pareto-front size.
    pub pareto_front_size: Gauge,
    /// Front hypervolume against the fixed reference point, stored as
    /// raw `f64` bits (gauges are integral; decode with
    /// `f64::from_bits`). Monotone per run — a stalling value alerts
    /// on a front that stopped improving.
    pub pareto_hypervolume_bits: Gauge,
    /// Speculative next-generation asks fired by the overlap reactor.
    pub overlap_asks: Counter,
    /// Speculative asks rolled back instead of hitting. A rollback
    /// rate near the ask rate means speculation is pure waste — see
    /// `docs/OPERATIONS.md` for the alert.
    pub overlap_rollbacks: Counter,
    /// Milliseconds of speculative work overlapped with primary tails.
    pub overlap_ms: Counter,
    /// Sub-candidate joint work units merged (`joint_unit` wire mode).
    pub joint_units: Counter,
}

/// Multi-tenant gateway instruments (updated by `naas::gateway`).
#[derive(Debug)]
pub struct GatewayMetrics {
    /// Jobs accepted by `job_submit`.
    pub jobs_submitted: Counter,
    /// Submissions refused with `rejected:over_capacity`.
    pub jobs_rejected: Counter,
    /// Jobs that reached `done`.
    pub jobs_completed: Counter,
    /// Jobs that reached `cancelled`.
    pub jobs_cancelled: Counter,
    /// Jobs that reached `failed`.
    pub jobs_failed: Counter,
    /// Search generations stepped on behalf of any job.
    pub job_generations: Counter,
    /// Jobs currently holding an executor.
    pub jobs_running: Gauge,
    /// Jobs resident but between generations (queued or checkpointed).
    pub jobs_queued: Gauge,
    /// Generations stepped per tenant, keyed by tenant name.
    pub tenant_generations: GaugeFamily,
}

/// The process-global metrics registry. Obtain it via [`metrics`].
#[derive(Debug)]
pub struct Metrics {
    /// Worker-pool section.
    pub pool: PoolMetrics,
    /// Service-batcher section.
    pub batcher: BatcherMetrics,
    /// Evaluation-pipeline section.
    pub pipeline: PipelineMetrics,
    /// Distributed-coordination section.
    pub coordinator: CoordinatorMetrics,
    /// Multi-tenant gateway section.
    pub gateway: GatewayMetrics,
}

impl Metrics {
    fn new() -> Self {
        Self {
            pool: PoolMetrics {
                jobs: Counter::new(),
                panics: Counter::new(),
                job_latency: Histogram::new(LATENCY_BUCKETS_US),
            },
            batcher: BatcherMetrics {
                batches: Counter::new(),
                requests: Counter::new(),
                batch_size: Histogram::new(SIZE_BUCKETS),
                max_queue_depth: Gauge::new(),
            },
            pipeline: PipelineMetrics::default(),
            coordinator: CoordinatorMetrics {
                generations: Counter::new(),
                generation_wall: Histogram::new(LATENCY_BUCKETS_US),
                rpcs: Counter::new(),
                rpc_latency: Histogram::new(LATENCY_BUCKETS_US),
                per_worker_rpc: HistogramFamily::new(LATENCY_BUCKETS_US),
                reissues: Counter::new(),
                rejoins: Counter::new(),
                deaths: Counter::new(),
                deltas_gossiped: Counter::new(),
                microshards: Counter::new(),
                steals: Counter::new(),
                resplits: Counter::new(),
                speculations: Counter::new(),
                duplicate_replies: Counter::new(),
                worker_share: GaugeFamily::new(),
                pareto_inserts: Counter::new(),
                pareto_rejections: Counter::new(),
                pareto_front_size: Gauge::new(),
                pareto_hypervolume_bits: Gauge::new(),
                overlap_asks: Counter::new(),
                overlap_rollbacks: Counter::new(),
                overlap_ms: Counter::new(),
                joint_units: Counter::new(),
            },
            gateway: GatewayMetrics {
                jobs_submitted: Counter::new(),
                jobs_rejected: Counter::new(),
                jobs_completed: Counter::new(),
                jobs_cancelled: Counter::new(),
                jobs_failed: Counter::new(),
                job_generations: Counter::new(),
                jobs_running: Gauge::new(),
                jobs_queued: Gauge::new(),
                tenant_generations: GaugeFamily::new(),
            },
        }
    }

    /// Copies every instrument into a serializable [`MetricsSnapshot`],
    /// attaching the caller's memo-cache counters (the cache is
    /// per-engine, not global, so the caller supplies its view —
    /// typically via [`cache_counters`]).
    pub fn snapshot(&self, cache: CacheCounters) -> MetricsSnapshot {
        MetricsSnapshot {
            cache,
            pool: PoolSnapshot {
                jobs: self.pool.jobs.get(),
                panics: self.pool.panics.get(),
                job_latency_us: self.pool.job_latency.snapshot(),
            },
            batcher: BatcherSnapshot {
                batches: self.batcher.batches.get(),
                requests: self.batcher.requests.get(),
                batch_size: self.batcher.batch_size.snapshot(),
                max_queue_depth: self.batcher.max_queue_depth.get(),
            },
            pipeline: PipelineSnapshot {
                evaluations: self.pipeline.evaluations.get(),
                resamples: self.pipeline.resamples.get(),
            },
            coordinator: CoordinatorSnapshot {
                generations: self.coordinator.generations.get(),
                generation_wall_us: self.coordinator.generation_wall.snapshot(),
                rpcs: self.coordinator.rpcs.get(),
                rpc_latency_us: self.coordinator.rpc_latency.snapshot(),
                per_worker_rpc_us: self.coordinator.per_worker_rpc.snapshot(),
                reissues: self.coordinator.reissues.get(),
                rejoins: self.coordinator.rejoins.get(),
                deaths: self.coordinator.deaths.get(),
                deltas_gossiped: self.coordinator.deltas_gossiped.get(),
                microshards: self.coordinator.microshards.get(),
                steals: self.coordinator.steals.get(),
                resplits: self.coordinator.resplits.get(),
                speculations: self.coordinator.speculations.get(),
                duplicate_replies: self.coordinator.duplicate_replies.get(),
                worker_share_permille: self.coordinator.worker_share.snapshot(),
                pareto_inserts: self.coordinator.pareto_inserts.get(),
                pareto_rejections: self.coordinator.pareto_rejections.get(),
                pareto_front_size: self.coordinator.pareto_front_size.get(),
                pareto_hypervolume_bits: self.coordinator.pareto_hypervolume_bits.get(),
                overlap_asks: self.coordinator.overlap_asks.get(),
                overlap_rollbacks: self.coordinator.overlap_rollbacks.get(),
                overlap_ms: self.coordinator.overlap_ms.get(),
                joint_units: self.coordinator.joint_units.get(),
            },
            gateway: GatewaySnapshot {
                jobs_submitted: self.gateway.jobs_submitted.get(),
                jobs_rejected: self.gateway.jobs_rejected.get(),
                jobs_completed: self.gateway.jobs_completed.get(),
                jobs_cancelled: self.gateway.jobs_cancelled.get(),
                jobs_failed: self.gateway.jobs_failed.get(),
                job_generations: self.gateway.job_generations.get(),
                jobs_running: self.gateway.jobs_running.get(),
                jobs_queued: self.gateway.jobs_queued.get(),
                tenant_generations: self.gateway.tenant_generations.snapshot(),
            },
        }
    }
}

/// The process-global registry. Counters live for the life of the
/// process; snapshots are monotone between reads.
pub fn metrics() -> &'static Metrics {
    static REGISTRY: OnceLock<Metrics> = OnceLock::new();
    REGISTRY.get_or_init(Metrics::new)
}

// ---------------------------------------------------------------------------
// Structured event log
// ---------------------------------------------------------------------------

/// Event severity. `Debug` events (per-generation progress) are
/// written to the JSONL sink but not rendered to stderr by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume progress telemetry (sink only by default).
    Debug,
    /// Normal lifecycle events (banners, rejoins).
    Info,
    /// Degraded-but-handled conditions (deaths, re-issues).
    Warn,
    /// Conditions an operator must act on (version bans, fatal CLI errors).
    Error,
}

impl Level {
    /// The lowercase wire spelling (`"debug"`, `"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// An injectable milliseconds-since-epoch clock.
pub type Clock = Box<dyn Fn() -> u64 + Send + Sync>;

struct LogState {
    sink: Option<Box<dyn Write + Send>>,
    clock: Option<Clock>,
    stderr_min: Option<Level>,
}

/// A structured event log: every event carries a level, a stable event
/// name, a human-readable message, and typed fields.
///
/// Rendering is two-channel. The **message** goes to stderr verbatim
/// (for levels at or above the stderr threshold, default [`Level::Info`])
/// — byte-identical to what the pre-telemetry `eprintln!` calls
/// printed, so existing log greps and the failure-modes table in
/// `docs/OPERATIONS.md` keep working. The **structured record** goes to
/// the optional JSONL sink as one object per line:
///
/// ```json
/// {"kind":"event","ts_ms":1754600000000,"level":"warn",
///  "event":"worker_died","msg":"worker 10.0.0.7:4801 died ...",
///  "worker":"10.0.0.7:4801","generation":17}
/// ```
///
/// The clock is injectable (tests pin it for byte-stable output) and is
/// only ever read — timestamps never feed the search.
pub struct EventLog {
    state: Mutex<LogState>,
}

impl EventLog {
    /// A log with stderr rendering at [`Level::Info`]+, no sink, and
    /// the system clock.
    pub const fn new() -> Self {
        Self {
            state: Mutex::new(LogState {
                sink: None,
                clock: None,
                stderr_min: Some(Level::Info),
            }),
        }
    }

    /// Routes structured records to `sink` (one JSON object per line).
    pub fn set_sink(&self, sink: Box<dyn Write + Send>) {
        lock(&self.state).sink = Some(sink);
    }

    /// Opens (creates or appends to) a JSONL sink file at `path`.
    pub fn open_sink(&self, path: &str) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.set_sink(Box::new(file));
        Ok(())
    }

    /// Whether a JSONL sink is attached.
    pub fn has_sink(&self) -> bool {
        lock(&self.state).sink.is_some()
    }

    /// Replaces the timestamp source (milliseconds since the epoch).
    pub fn set_clock(&self, clock: Clock) {
        lock(&self.state).clock = Some(clock);
    }

    /// Sets the minimum level rendered to stderr (`None` disables
    /// stderr rendering entirely; structured records still flow).
    pub fn set_stderr_min(&self, min: Option<Level>) {
        lock(&self.state).stderr_min = min;
    }

    /// Emits one event: renders `message` to stderr (per the level
    /// threshold) and appends the structured record to the sink.
    /// `fields` are flattened into the top-level JSON object for
    /// direct `jq` selection.
    pub fn emit(&self, level: Level, event: &str, message: &str, fields: &[(&str, Value)]) {
        let mut state = lock(&self.state);
        if state.stderr_min.is_some_and(|min| level >= min) {
            eprintln!("{message}");
        }
        if state.sink.is_none() {
            return;
        }
        let ts = now_ms(&state.clock);
        let mut record = vec![
            ("kind".to_string(), Value::Str("event".to_string())),
            ("ts_ms".to_string(), Value::U64(ts)),
            ("level".to_string(), Value::Str(level.as_str().to_string())),
            ("event".to_string(), Value::Str(event.to_string())),
            ("msg".to_string(), Value::Str(message.to_string())),
        ];
        for (key, value) in fields {
            record.push((key.to_string(), value.clone()));
        }
        write_line(&mut state, &Value::Object(record));
    }

    /// Appends one `{"kind":"metrics",...}` snapshot record to the
    /// sink. A no-op when no sink is attached, so callers can invoke
    /// this unconditionally on hot-ish paths (once per generation).
    pub fn write_metrics(&self, snapshot: &MetricsSnapshot) {
        let mut state = lock(&self.state);
        if state.sink.is_none() {
            return;
        }
        let ts = now_ms(&state.clock);
        let record = Value::Object(vec![
            ("kind".to_string(), Value::Str("metrics".to_string())),
            ("ts_ms".to_string(), Value::U64(ts)),
            ("metrics".to_string(), serde_json::to_value(snapshot)),
        ]);
        write_line(&mut state, &record);
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

fn now_ms(clock: &Option<Clock>) -> u64 {
    match clock {
        Some(clock) => clock(),
        None => SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0),
    }
}

fn write_line(state: &mut LogState, record: &Value) {
    let line = serde_json::to_string(record).unwrap_or_default();
    if let Some(sink) = state.sink.as_mut() {
        // Telemetry must never take the run down: on a dead sink
        // (disk full, pipe closed) drop the sink and carry on.
        let ok = writeln!(sink, "{line}").and_then(|()| sink.flush());
        if ok.is_err() {
            state.sink = None;
        }
    }
}

/// The process-global event log used by the fleet code paths.
pub fn events() -> &'static EventLog {
    static EVENTS: EventLog = EventLog::new();
    &EVENTS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(lock(&self.0).clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max must not lower the gauge");
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.set(2);
        assert_eq!(g.get(), 2, "set overwrites unconditionally");
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(0); // below the first edge → bucket 0
        h.observe(10); // exactly on an edge → that bucket (inclusive)
        h.observe(11); // just past an edge → next bucket
        h.observe(1000); // exactly the last edge → last finite bucket
        h.observe(1001); // past the last edge → overflow bucket
        h.observe(u64::MAX); // extreme value → overflow bucket, saturating sum
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 1, 2]);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(snap.edges, vec![10, 100, 1000]);
    }

    #[test]
    fn histogram_snapshot_serde_round_trip() {
        let h = Histogram::new(LATENCY_BUCKETS_US);
        h.observe(1);
        h.observe(999);
        h.observe(70_000_000);
        let snap = h.snapshot();
        let wire = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, snap);
        assert!(back.mean() > 0.0);
    }

    #[test]
    fn histogram_family_labels_are_stable() {
        let fam = HistogramFamily::new(&[10, 100]);
        fam.get("b:2").observe(5);
        fam.get("a:1").observe(50);
        fam.get("b:2").observe(7);
        let snap = fam.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a:1", "snapshot is label-sorted");
        assert_eq!(snap[1].label, "b:2");
        assert_eq!(snap[1].histogram.count, 2);
    }

    #[test]
    fn gauge_family_labels_are_stable() {
        let fam = GaugeFamily::new();
        fam.get("b:2").set(40);
        fam.get("a:1").set(960);
        fam.get("b:2").set(55);
        let snap = fam.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a:1", "snapshot is label-sorted");
        assert_eq!(snap[0].value, 960);
        assert_eq!(snap[1].label, "b:2");
        assert_eq!(snap[1].value, 55, "get returns the same member");
    }

    #[test]
    fn metrics_snapshot_round_trips_through_the_shim() {
        let registry = Metrics::new();
        registry.pool.jobs.add(3);
        registry.pool.job_latency.observe(1_234);
        registry.batcher.batch_size.observe(16);
        registry.batcher.max_queue_depth.set_max(9);
        registry.coordinator.per_worker_rpc.get("w:1").observe(500);
        registry.coordinator.steals.add(2);
        registry.coordinator.duplicate_replies.inc();
        registry.coordinator.worker_share.get("w:1").set(750);
        registry.coordinator.overlap_asks.add(5);
        registry.coordinator.overlap_rollbacks.add(2);
        registry.coordinator.overlap_ms.add(340);
        registry.coordinator.joint_units.add(96);
        registry.gateway.jobs_submitted.add(4);
        registry.gateway.jobs_running.set(2);
        registry.gateway.tenant_generations.get("acme").set(17);
        let snap = registry.snapshot(CacheCounters {
            hits: 10,
            misses: 5,
            entries: 12,
            evictions: 3,
            hit_rate: 10.0 / 15.0,
        });
        let wire = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.pool.jobs, 3);
        assert_eq!(back.batcher.max_queue_depth, 9);
        assert_eq!(back.coordinator.per_worker_rpc_us[0].label, "w:1");
        assert_eq!(back.coordinator.steals, 2);
        assert_eq!(back.coordinator.duplicate_replies, 1);
        assert_eq!(back.coordinator.worker_share_permille.len(), 1);
        assert_eq!(back.coordinator.worker_share_permille[0].value, 750);
        assert_eq!(back.coordinator.overlap_asks, 5);
        assert_eq!(back.coordinator.overlap_rollbacks, 2);
        assert_eq!(back.coordinator.overlap_ms, 340);
        assert_eq!(back.coordinator.joint_units, 96);
        assert_eq!(back.gateway.jobs_submitted, 4);
        assert_eq!(back.gateway.jobs_running, 2);
        assert_eq!(back.gateway.tenant_generations[0].label, "acme");
        assert_eq!(back.gateway.tenant_generations[0].value, 17);
    }

    #[test]
    fn event_log_injected_clock_is_deterministic() {
        let log = EventLog::new();
        log.set_stderr_min(None);
        log.set_clock(Box::new(|| 1_234_567));
        let buf = SharedBuf::default();
        log.set_sink(Box::new(buf.clone()));

        log.emit(
            Level::Warn,
            "worker_died",
            "worker w:1 died mid-generation",
            &[
                ("worker", Value::Str("w:1".to_string())),
                ("generation", Value::U64(17)),
            ],
        );
        log.emit(Level::Debug, "generation", "gen 18", &[]);

        let first = buf.contents();
        // Same clock, same events → byte-identical output on a re-run.
        let log2 = EventLog::new();
        log2.set_stderr_min(None);
        log2.set_clock(Box::new(|| 1_234_567));
        let buf2 = SharedBuf::default();
        log2.set_sink(Box::new(buf2.clone()));
        log2.emit(
            Level::Warn,
            "worker_died",
            "worker w:1 died mid-generation",
            &[
                ("worker", Value::Str("w:1".to_string())),
                ("generation", Value::U64(17)),
            ],
        );
        log2.emit(Level::Debug, "generation", "gen 18", &[]);
        assert_eq!(first, buf2.contents());

        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.len(), 2);
        let rec: Value = serde_json::parse_str(lines[0]).unwrap();
        let Value::Object(pairs) = &rec else {
            panic!("event record must be an object");
        };
        let field = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert_eq!(field("kind"), Some(&Value::Str("event".to_string())));
        assert_eq!(field("ts_ms"), Some(&Value::U64(1_234_567)));
        assert_eq!(field("level"), Some(&Value::Str("warn".to_string())));
        assert_eq!(field("worker"), Some(&Value::Str("w:1".to_string())));
        assert_eq!(field("generation"), Some(&Value::U64(17)));
    }

    #[test]
    fn metrics_record_carries_the_snapshot() {
        let log = EventLog::new();
        log.set_stderr_min(None);
        log.set_clock(Box::new(|| 42));
        let buf = SharedBuf::default();
        log.set_sink(Box::new(buf.clone()));

        let registry = Metrics::new();
        registry.pipeline.evaluations.add(64);
        log.write_metrics(&registry.snapshot(CacheCounters::default()));

        let text = buf.contents();
        let rec: Value = serde_json::parse_str(text.trim()).unwrap();
        let Value::Object(pairs) = &rec else {
            panic!("metrics record must be an object");
        };
        let field = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert_eq!(field("kind"), Some(&Value::Str("metrics".to_string())));
        assert_eq!(field("ts_ms"), Some(&Value::U64(42)));
        let inner = field("metrics").expect("metrics payload present");
        let parsed: MetricsSnapshot = serde_json::from_value(inner).unwrap();
        assert_eq!(parsed.pipeline.evaluations, 64);
    }

    #[test]
    fn sink_failure_drops_the_sink_not_the_process() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = EventLog::new();
        log.set_stderr_min(None);
        log.set_sink(Box::new(Broken));
        log.emit(Level::Info, "x", "x", &[]);
        assert!(!log.has_sink(), "a dead sink is detached, not retried");
        log.emit(Level::Info, "x", "x", &[]); // must not panic
    }
}
