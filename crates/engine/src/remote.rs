//! A JSONL RPC client for remote service workers.
//!
//! The wire-protocol counterpart of [`crate::service`]: where that module
//! frames requests *into* a serving process, [`RemoteWorker`] frames them
//! *out of* a coordinating one — it connects to a `naas-search worker`
//! (or `serve --port`) process over TCP, writes one request line, and
//! blocks for the matching response line. Like everything else in the
//! engine it is semantics-free: commands and parameters are opaque
//! [`Value`]s; what they mean is the caller's business (the distributed
//! search coordinator in `naas::distributed`).
//!
//! Failure model: any I/O or framing error drops the connection and
//! surfaces as a [`RemoteError`]. The next call transparently
//! reconnects, so a caller that re-issues failed work (the coordinator's
//! shard re-issue and auto-rejoin paths) needs no connection bookkeeping
//! of its own. The full wire specification lives in `docs/PROTOCOL.md`.
//!
//! ## The `hello` handshake
//!
//! With [`RemoteWorker::enable_handshake`], every (re)connect opens with
//! a `hello` exchange: the client sends its [`PROTOCOL_VERSION`] and
//! name, the server answers with its own version and capability list.
//! Anything but an exact version match — including a pre-handshake
//! server that rejects `hello` as an unknown command — surfaces as
//! [`RemoteError::Incompatible`] and never reaches a semantic command,
//! turning "two builds silently disagree about serialized state" into a
//! clean connect-time error. Because the handshake runs inside
//! [`RemoteWorker::connect`], a worker that died and was restarted with
//! a *different* build is re-screened on rejoin, not just at startup.
//!
//! # Examples
//!
//! ```
//! use naas_engine::remote::RemoteWorker;
//!
//! // Handles are cheap and lazy: nothing is dialed until the first
//! // call (or an explicit `connect`).
//! let mut worker = RemoteWorker::new("127.0.0.1:4801");
//! worker.enable_handshake("doc-example");
//! assert_eq!(worker.addr(), "127.0.0.1:4801");
//! assert!(!worker.is_connected());
//! // Capabilities are learned by the handshake; before it, none.
//! assert!(!worker.has_capability("joint"));
//! ```
//!
//! [`PROTOCOL_VERSION`]: crate::service::PROTOCOL_VERSION

use crate::service::PROTOCOL_VERSION;
use serde::Value;
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a remote call failed.
#[derive(Debug)]
pub enum RemoteError {
    /// The connection could not be established, or died mid-call.
    Io(std::io::Error),
    /// The worker answered, but not with a well-formed response line
    /// (invalid JSON, wrong `id` echo, missing fields).
    Protocol(String),
    /// The worker answered with an error response (`"ok": false`); the
    /// payload is its `error` message. The connection stays usable.
    Remote(String),
    /// The `hello` handshake failed: the worker speaks a different
    /// protocol version (or predates the handshake entirely). Re-dialing
    /// cannot help until one side is rebuilt.
    Incompatible(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "worker connection error: {e}"),
            RemoteError::Protocol(m) => write!(f, "worker protocol violation: {m}"),
            RemoteError::Remote(m) => write!(f, "worker error response: {m}"),
            RemoteError::Incompatible(m) => write!(f, "worker version mismatch: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Io(e)
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Bytes of a response line read so far. Pipelined receives use a
    /// socket read timeout, which can expire mid-line; whatever already
    /// arrived must survive the tick or the framing is corrupted.
    partial: Vec<u8>,
    /// The read timeout currently applied to the socket (mirrors the
    /// kernel state so `read_line_tick` only issues the `setsockopt`
    /// when the deadline mode actually changes).
    read_timeout: Option<Duration>,
}

/// What one [`RemoteWorker::recv_next`] tick yields: `None` when the
/// tick expired with nothing resolved, or the oldest in-flight request's
/// id paired with its outcome (a result, or an orderly remote error that
/// keeps the pipeline intact).
pub type PipelinedReply = Option<(u64, Result<Value, RemoteError>)>;

/// One remote serving process, addressed as `host:port`.
///
/// Two calling modes share one connection:
///
/// * **Sequential** ([`RemoteWorker::call`]): write one request line,
///   block for the matching response. Simple, used by one-shot clients
///   and the CLI.
/// * **Pipelined** ([`RemoteWorker::send`] / [`RemoteWorker::recv_next`]):
///   queue several requests ahead of their replies so the worker never
///   drains its inbox dry between shards. The service answers each
///   stream's responses *in request order* (see `docs/PROTOCOL.md`), so
///   replies are matched to the oldest in-flight id — no wire change.
///
/// Fan-out across workers is the caller's concern — hand each worker to
/// its own thread.
pub struct RemoteWorker {
    addr: String,
    conn: Option<Conn>,
    next_id: u64,
    /// Ids of pipelined requests written but not yet answered, oldest
    /// first, each with its issue instant (for latency telemetry).
    pending: VecDeque<(u64, Instant)>,
    /// `Some(client name)` once [`RemoteWorker::enable_handshake`] was
    /// called: every (re)connect then opens with a `hello` exchange.
    handshake: Option<String>,
    /// Capability strings the server advertised in its last successful
    /// `hello` reply.
    capabilities: Vec<String>,
    /// Bound on how long a dial may block; `None` uses the OS default.
    connect_timeout: Option<std::time::Duration>,
}

impl RemoteWorker {
    /// Creates a handle on `addr` (`host:port`) without connecting yet;
    /// the first call (or an explicit [`RemoteWorker::connect`]) dials.
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteWorker {
            addr: addr.into(),
            conn: None,
            next_id: 1,
            pending: VecDeque::new(),
            handshake: None,
            capabilities: Vec::new(),
            connect_timeout: None,
        }
    }

    /// Bounds every future dial to `timeout`. Without one, a peer that
    /// silently drops SYNs (powered-off machine, network partition)
    /// blocks `connect` for the OS default — minutes on Linux. The
    /// distributed coordinator sets this so its periodic rejoin probes
    /// stay cheap: a probe against a down worker must cost a bounded
    /// beat of the generation barrier, not a connect-timeout stall.
    pub fn set_connect_timeout(&mut self, timeout: std::time::Duration) {
        self.connect_timeout = Some(timeout);
    }

    /// Opens every (re)connect with the `hello` version handshake,
    /// identifying this client as `client` (a free-form name the server
    /// may log). See the module docs; the distributed coordinator
    /// enables this on every worker it dials.
    pub fn enable_handshake(&mut self, client: impl Into<String>) {
        self.handshake = Some(client.into());
    }

    /// Capability strings advertised by the server's last `hello` reply
    /// (empty before the first handshake, or when handshaking is off).
    pub fn capabilities(&self) -> &[String] {
        &self.capabilities
    }

    /// `true` when the server's last `hello` reply advertised `name`.
    pub fn has_capability(&self, name: &str) -> bool {
        self.capabilities.iter().any(|c| c == name)
    }

    /// The worker's address, as given to [`RemoteWorker::new`].
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `true` while a connection is open (it may still be found dead by
    /// the next call — TCP only reports failure on use).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Establishes the connection if there is none, performing the
    /// `hello` handshake first when [`RemoteWorker::enable_handshake`]
    /// is on — so by the time `connect` returns `Ok`, version
    /// compatibility is already proven and the advertised
    /// [`RemoteWorker::capabilities`] are known.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] when the worker cannot be reached;
    /// [`RemoteError::Incompatible`] when the handshake finds a protocol
    /// version mismatch (including a server too old to know `hello`).
    pub fn connect(&mut self) -> Result<(), RemoteError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let writer = match self.connect_timeout {
            None => TcpStream::connect(&self.addr)?,
            Some(timeout) => {
                // `connect_timeout` takes a resolved address; try each
                // resolution like `TcpStream::connect` would.
                use std::net::ToSocketAddrs;
                let mut last = None;
                let mut stream = None;
                for resolved in self.addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(RemoteError::Io(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        })))
                    }
                }
            }
        };
        // Line-oriented request/response over small JSON payloads:
        // Nagle batching against delayed ACKs stalls every pipelined
        // round trip by tens of milliseconds, which dwarfs the work in
        // a micro-shard. Flush segments immediately.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        let mut conn = Conn {
            reader,
            writer,
            partial: Vec::new(),
            read_timeout: None,
        };
        if let Some(client) = self.handshake.clone() {
            // The handshake always uses the reserved id 0: it may run
            // in the middle of a `call` (transparent reconnect), and
            // stealing an id from the per-call sequence there would
            // desynchronize the request↔response pairing.
            self.capabilities = hello_exchange(&mut conn, 0, &client)?;
        }
        self.conn = Some(conn);
        Ok(())
    }

    /// Drops the connection; the next call reconnects. Any pipelined
    /// requests still in flight are forgotten — their replies can never
    /// be read once the stream is gone.
    pub fn disconnect(&mut self) {
        self.conn = None;
        self.pending.clear();
    }

    /// Alias of [`RemoteWorker::disconnect`] that reads as what the
    /// scheduler means by it: give up on this conversation (typically a
    /// hung worker whose outstanding shards were already re-issued
    /// elsewhere) without declaring the worker dead. The next
    /// generation's first `send`/`call` transparently re-dials.
    pub fn abandon(&mut self) {
        self.disconnect();
    }

    /// Number of pipelined requests written but not yet answered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Writes one request (`cmd` plus `params`, with a fresh numeric
    /// `id`) **without waiting for the reply**, connecting first if
    /// needed. Returns the request id; the reply is claimed later by
    /// [`RemoteWorker::recv_next`]. Queue as many as the pipeline depth
    /// calls for — the service answers in request order.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] when the dial or the write fails, and
    /// [`RemoteError::Incompatible`] from the connect-time handshake.
    /// Any error drops the connection and forgets the in-flight queue.
    pub fn send(&mut self, cmd: &str, params: Vec<(String, Value)>) -> Result<u64, RemoteError> {
        if let Err(e) = self.connect() {
            self.disconnect();
            return Err(e);
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut fields = Vec::with_capacity(params.len() + 2);
        fields.push(("id".to_string(), Value::U64(id)));
        fields.push(("cmd".to_string(), Value::Str(cmd.to_string())));
        fields.extend(params);
        let line = serde_json::to_string(&Value::Object(fields))
            .expect("value serialization is infallible");
        let conn = self.conn.as_mut().expect("connected above");
        match write_line(conn, &line) {
            Ok(()) => {
                crate::telemetry::metrics().coordinator.rpcs.inc();
                self.pending.push_back((id, Instant::now()));
                Ok(id)
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Waits up to `tick` for the next pipelined reply.
    ///
    /// Returns `Ok(None)` when the tick expires first (or nothing is in
    /// flight) — partial data already read is kept, so ticking is free —
    /// and `Ok(Some((id, outcome)))` when the oldest in-flight request
    /// resolves. The inner outcome is only ever `Ok(result)` or an
    /// orderly [`RemoteError::Remote`] (which keeps the connection and
    /// pipeline intact).
    ///
    /// # Errors
    ///
    /// An outer `Err` is a transport or framing failure: the connection
    /// is dropped and **all** in-flight requests are lost (the caller
    /// re-issues them elsewhere).
    pub fn recv_next(&mut self, tick: Duration) -> Result<PipelinedReply, RemoteError> {
        let Some(&(id, issued)) = self.pending.front() else {
            return Ok(None);
        };
        let conn = match self.conn.as_mut() {
            Some(conn) => conn,
            None => {
                self.pending.clear();
                return Err(RemoteError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "pipelined requests outstanding on a closed connection",
                )));
            }
        };
        let line = match read_line_tick(conn, Some(tick)) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(None),
            Err(e) => {
                self.disconnect();
                return Err(e);
            }
        };
        self.pending.pop_front();
        let coordinator = &crate::telemetry::metrics().coordinator;
        let elapsed = issued.elapsed();
        coordinator.rpc_latency.observe_duration(elapsed);
        coordinator
            .per_worker_rpc
            .get(&self.addr)
            .observe_duration(elapsed);
        match parse_response(&line, id) {
            Ok(result) => Ok(Some((id, Ok(result)))),
            Err(RemoteError::Remote(m)) => Ok(Some((id, Err(RemoteError::Remote(m))))),
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Claims the next pipelined reply only if one has **already
    /// arrived** — a full response line sitting in the read buffer.
    /// Never blocks on the socket: this is the event-driven fast path
    /// of the scheduler's reactor loop, letting a worker thread drain
    /// every reply that has landed before paying a blocking tick on
    /// [`RemoteWorker::recv_next`].
    ///
    /// Returns `Ok(None)` when nothing is in flight or the next reply
    /// has not fully arrived.
    ///
    /// # Errors
    ///
    /// Same contract as [`RemoteWorker::recv_next`].
    pub fn recv_ready(&mut self) -> Result<PipelinedReply, RemoteError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let ready = self
            .conn
            .as_ref()
            .is_some_and(|c| c.reader.buffer().contains(&b'\n'));
        if !ready {
            return Ok(None);
        }
        // The line completes from the buffer, so the tick never runs.
        self.recv_next(Duration::from_micros(1))
    }

    /// Sends one request (`cmd` plus `params`, with a fresh numeric `id`)
    /// and blocks for the matching response line. Returns the response's
    /// `result` payload.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] / [`RemoteError::Protocol`] drop the
    /// connection (the conversation's request↔response pairing can no
    /// longer be trusted); [`RemoteError::Remote`] is an orderly error
    /// response and keeps it open.
    pub fn call(&mut self, cmd: &str, params: Vec<(String, Value)>) -> Result<Value, RemoteError> {
        assert!(
            self.pending.is_empty(),
            "call() while pipelined requests are in flight would desynchronize reply pairing"
        );
        let id = self.next_id;
        self.next_id += 1;
        let mut fields = Vec::with_capacity(params.len() + 2);
        fields.push(("id".to_string(), Value::U64(id)));
        fields.push(("cmd".to_string(), Value::Str(cmd.to_string())));
        fields.extend(params);
        let line = serde_json::to_string(&Value::Object(fields))
            .expect("value serialization is infallible");

        let start = std::time::Instant::now();
        let outcome = self.exchange(&line, id);
        let coordinator = &crate::telemetry::metrics().coordinator;
        coordinator.rpcs.inc();
        let elapsed = start.elapsed();
        coordinator.rpc_latency.observe_duration(elapsed);
        coordinator
            .per_worker_rpc
            .get(&self.addr)
            .observe_duration(elapsed);

        match outcome {
            Ok(result) => Ok(result),
            Err(e) => {
                if !matches!(e, RemoteError::Remote(_)) {
                    self.disconnect();
                }
                Err(e)
            }
        }
    }

    fn exchange(&mut self, line: &str, id: u64) -> Result<Value, RemoteError> {
        self.connect()?;
        let conn = self.conn.as_mut().expect("connected above");
        wire_exchange(conn, line, id)
    }
}

/// Writes one framed request line.
fn write_line(conn: &mut Conn, line: &str) -> Result<(), RemoteError> {
    conn.writer.write_all(line.as_bytes())?;
    conn.writer.write_all(b"\n")?;
    conn.writer.flush()?;
    Ok(())
}

/// Reads one `\n`-terminated line, optionally bounded by a socket read
/// timeout. With `tick: None` it blocks until a full line (or failure);
/// with `Some(tick)` it returns `Ok(None)` when the deadline expires
/// first, parking any partially-read bytes in `conn.partial` so the
/// next attempt resumes mid-line instead of corrupting the framing.
fn read_line_tick(conn: &mut Conn, tick: Option<Duration>) -> Result<Option<String>, RemoteError> {
    if conn.read_timeout != tick {
        conn.reader.get_ref().set_read_timeout(tick)?;
        conn.read_timeout = tick;
    }
    loop {
        let buf = match conn.reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if tick.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(RemoteError::Io(e)),
        };
        if buf.is_empty() {
            return Err(RemoteError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed the connection mid-call",
            )));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                conn.partial.extend_from_slice(&buf[..pos]);
                conn.reader.consume(pos + 1);
                let bytes = std::mem::take(&mut conn.partial);
                return match String::from_utf8(bytes) {
                    Ok(line) => Ok(Some(line)),
                    Err(_) => Err(RemoteError::Protocol(
                        "response line is not UTF-8".to_string(),
                    )),
                };
            }
            None => {
                let n = buf.len();
                conn.partial.extend_from_slice(buf);
                conn.reader.consume(n);
            }
        }
    }
}

/// Parses one response line, requiring it to echo `id`, and splits the
/// orderly `ok: true/false` outcomes from framing violations.
fn parse_response(response: &str, id: u64) -> Result<Value, RemoteError> {
    let value: Value = serde_json::parse_str(response.trim_end())
        .map_err(|e| RemoteError::Protocol(format!("invalid response JSON: {e}")))?;
    if value.get("id") != Some(&Value::U64(id)) {
        return Err(RemoteError::Protocol(format!(
            "response id mismatch (sent {id}, got {:?})",
            value.get("id")
        )));
    }
    match value.get("ok") {
        Some(&Value::Bool(true)) => Ok(value.get("result").cloned().unwrap_or(Value::Null)),
        Some(&Value::Bool(false)) => Err(RemoteError::Remote(
            value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified error")
                .to_string(),
        )),
        _ => Err(RemoteError::Protocol(
            "response has no boolean `ok` field".to_string(),
        )),
    }
}

/// One raw request/response round-trip on an open connection.
fn wire_exchange(conn: &mut Conn, line: &str, id: u64) -> Result<Value, RemoteError> {
    write_line(conn, line)?;
    let response = read_line_tick(conn, None)?.expect("a blocking read never ticks out");
    parse_response(&response, id)
}

/// Performs the `hello` exchange on a fresh connection: sends this
/// build's [`PROTOCOL_VERSION`] and the client name, and requires the
/// server to answer with the identical version. Returns the server's
/// advertised capability list.
fn hello_exchange(conn: &mut Conn, id: u64, client: &str) -> Result<Vec<String>, RemoteError> {
    let request = Value::Object(vec![
        ("id".to_string(), Value::U64(id)),
        ("cmd".to_string(), Value::Str("hello".to_string())),
        ("protocol".to_string(), Value::U64(PROTOCOL_VERSION)),
        ("client".to_string(), Value::Str(client.to_string())),
    ]);
    let line = serde_json::to_string(&request).expect("value serialization is infallible");
    let result = match wire_exchange(conn, &line, id) {
        Ok(result) => result,
        // An orderly error response to `hello` is itself a version
        // signal: either a pre-handshake build ("unknown command") or a
        // server that checked our version and refused. Both are
        // incompatibility, not transient failure.
        Err(RemoteError::Remote(m)) => {
            return Err(RemoteError::Incompatible(format!(
                "server rejected hello (protocol {PROTOCOL_VERSION}): {m}"
            )))
        }
        Err(e) => return Err(e),
    };
    match result.get("protocol").and_then(Value::as_u64) {
        Some(theirs) if theirs == PROTOCOL_VERSION => {}
        Some(theirs) => {
            return Err(RemoteError::Incompatible(format!(
                "server speaks protocol {theirs}, this client speaks {PROTOCOL_VERSION}"
            )))
        }
        None => {
            return Err(RemoteError::Protocol(
                "hello reply has no numeric `protocol` field".to_string(),
            ))
        }
    }
    let capabilities = result
        .get("capabilities")
        .and_then(Value::as_array)
        .map(|caps| {
            caps.iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    Ok(capabilities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A scripted one-connection server: answers each received line with
    /// the next canned response (or closes early when the script runs
    /// out).
    fn scripted_server(responses: Vec<Option<String>>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for response in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                match response {
                    Some(r) => {
                        writeln!(writer, "{r}").unwrap();
                        writer.flush().unwrap();
                    }
                    None => return, // scripted death: close mid-call
                }
            }
        });
        addr
    }

    #[test]
    fn call_round_trips_result() {
        let addr = scripted_server(vec![
            Some(r#"{"id":1,"ok":true,"result":{"answer":42}}"#.into()),
            Some(r#"{"id":2,"ok":false,"error":"nope"}"#.into()),
        ]);
        let mut worker = RemoteWorker::new(&addr);
        assert_eq!(worker.addr(), addr);
        let result = worker.call("ping", vec![]).unwrap();
        assert_eq!(result.get("answer"), Some(&Value::U64(42)));
        // An orderly error response keeps the connection open.
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Remote(ref m) if m == "nope"));
        assert!(worker.is_connected());
    }

    #[test]
    fn mid_call_death_is_io_error_and_disconnects() {
        let addr = scripted_server(vec![None]);
        let mut worker = RemoteWorker::new(&addr);
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Io(_)), "got {err}");
        assert!(!worker.is_connected());
    }

    #[test]
    fn id_mismatch_is_a_protocol_error() {
        let addr = scripted_server(vec![Some(r#"{"id":99,"ok":true,"result":null}"#.into())]);
        let mut worker = RemoteWorker::new(&addr);
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Protocol(_)), "got {err}");
        assert!(!worker.is_connected());
    }

    #[test]
    fn handshake_negotiates_version_and_capabilities() {
        let addr = scripted_server(vec![
            Some(format!(
                r#"{{"id":0,"ok":true,"result":{{"protocol":{PROTOCOL_VERSION},"capabilities":["joint","cache_gossip"]}}}}"#
            )),
            Some(r#"{"id":1,"ok":true,"result":null}"#.into()),
        ]);
        let mut worker = RemoteWorker::new(&addr);
        worker.enable_handshake("test");
        assert!(worker.capabilities().is_empty(), "no handshake yet");
        // The first call triggers connect → hello (reserved id 0) →
        // the call itself (id 1).
        worker.call("ping", vec![]).unwrap();
        assert!(worker.has_capability("joint"));
        assert!(worker.has_capability("cache_gossip"));
        assert!(!worker.has_capability("time_travel"));
    }

    #[test]
    fn version_mismatch_is_a_clean_incompatible_error() {
        let addr = scripted_server(vec![Some(
            r#"{"id":0,"ok":true,"result":{"protocol":99,"capabilities":[]}}"#.into(),
        )]);
        let mut worker = RemoteWorker::new(&addr);
        worker.enable_handshake("test");
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Incompatible(_)), "got {err}");
        assert!(err.to_string().contains("protocol 99"), "got {err}");
        assert!(!worker.is_connected(), "mismatch must not leave a conn");
    }

    #[test]
    fn pre_handshake_server_is_incompatible_not_a_crash() {
        // An old build answers `hello` like any unknown command: with an
        // orderly error response. That must surface as Incompatible.
        let addr = scripted_server(vec![Some(
            r#"{"id":0,"ok":false,"error":"unknown command `hello`"}"#.into(),
        )]);
        let mut worker = RemoteWorker::new(&addr);
        worker.enable_handshake("test");
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Incompatible(_)), "got {err}");
    }

    #[test]
    fn pipelined_send_recv_matches_oldest_pending_id() {
        let addr = scripted_server(vec![
            Some(r#"{"id":1,"ok":true,"result":10}"#.into()),
            Some(r#"{"id":2,"ok":false,"error":"nope"}"#.into()),
            Some(r#"{"id":3,"ok":true,"result":30}"#.into()),
        ]);
        let mut worker = RemoteWorker::new(&addr);
        assert_eq!(worker.send("ping", vec![]).unwrap(), 1);
        assert_eq!(worker.send("ping", vec![]).unwrap(), 2);
        assert_eq!(worker.send("ping", vec![]).unwrap(), 3);
        assert_eq!(worker.pending(), 3);

        let tick = Duration::from_secs(5);
        let (id, outcome) = worker.recv_next(tick).unwrap().unwrap();
        assert_eq!(id, 1);
        assert_eq!(outcome.unwrap(), Value::U64(10));
        // An orderly error response resolves its request and keeps the
        // connection (and the rest of the pipeline) intact.
        let (id, outcome) = worker.recv_next(tick).unwrap().unwrap();
        assert_eq!(id, 2);
        assert!(matches!(outcome, Err(RemoteError::Remote(ref m)) if m == "nope"));
        assert!(worker.is_connected());
        let (id, outcome) = worker.recv_next(tick).unwrap().unwrap();
        assert_eq!(id, 3);
        assert_eq!(outcome.unwrap(), Value::U64(30));
        assert_eq!(worker.pending(), 0);
        // Nothing in flight → an immediate quiet tick, not an error.
        assert!(worker.recv_next(tick).unwrap().is_none());
    }

    #[test]
    fn recv_tick_preserves_partial_lines() {
        // A server that dribbles its reply in two chunks with a pause in
        // between: ticks must expire without dropping the first chunk.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            write!(writer, r#"{{"id":1,"ok":tr"#).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            writeln!(writer, r#"ue,"result":7}}"#).unwrap();
            writer.flush().unwrap();
            // Hold the socket open until the client is done reading.
            let mut rest = String::new();
            let _ = reader.read_line(&mut rest);
        });
        let mut worker = RemoteWorker::new(&addr);
        worker.send("ping", vec![]).unwrap();
        let tick = Duration::from_millis(15);
        let mut quiet_ticks = 0usize;
        let reply = loop {
            match worker.recv_next(tick).unwrap() {
                Some(reply) => break reply,
                None => quiet_ticks += 1,
            }
            assert!(quiet_ticks < 400, "reply never arrived");
        };
        assert!(quiet_ticks > 0, "the pause must produce at least one tick");
        assert_eq!(reply.0, 1);
        assert_eq!(reply.1.unwrap(), Value::U64(7));
    }

    #[test]
    fn pipelined_death_clears_all_in_flight() {
        let addr = scripted_server(vec![
            Some(r#"{"id":1,"ok":true,"result":null}"#.into()),
            None, // scripted death before the second reply
        ]);
        let mut worker = RemoteWorker::new(&addr);
        worker.send("ping", vec![]).unwrap();
        worker.send("ping", vec![]).unwrap();
        let tick = Duration::from_secs(5);
        assert!(worker.recv_next(tick).unwrap().is_some());
        let err = worker.recv_next(tick).unwrap_err();
        assert!(matches!(err, RemoteError::Io(_)), "got {err}");
        assert_eq!(worker.pending(), 0, "a dead stream forgets its queue");
        assert!(!worker.is_connected());
    }

    #[test]
    fn abandon_forgets_the_pipeline_without_killing_the_handle() {
        let addr = scripted_server(vec![Some(r#"{"id":2,"ok":true,"result":null}"#.into())]);
        let mut worker = RemoteWorker::new(&addr);
        worker.send("ping", vec![]).unwrap();
        worker.abandon();
        assert_eq!(worker.pending(), 0);
        assert!(!worker.is_connected());
        // The handle stays usable: the next call re-dials. (The scripted
        // server only serves one connection, so just assert the local
        // bookkeeping reset — id allocation continues from where it was.)
        assert_eq!(worker.addr(), addr);
    }

    #[test]
    fn unreachable_worker_is_io_error() {
        // A port nothing listens on: connect must fail cleanly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let mut worker = RemoteWorker::new(addr);
        assert!(matches!(
            worker.call("ping", vec![]),
            Err(RemoteError::Io(_))
        ));
    }
}
