//! A JSONL RPC client for remote service workers.
//!
//! The wire-protocol counterpart of [`crate::service`]: where that module
//! frames requests *into* a serving process, [`RemoteWorker`] frames them
//! *out of* a coordinating one — it connects to a `naas-search worker`
//! (or `serve --port`) process over TCP, writes one request line, and
//! blocks for the matching response line. Like everything else in the
//! engine it is semantics-free: commands and parameters are opaque
//! [`Value`]s; what they mean is the caller's business (the distributed
//! search coordinator in `naas::distributed`).
//!
//! Failure model: any I/O or framing error drops the connection and
//! surfaces as a [`RemoteError`]. The next call transparently
//! reconnects, so a caller that re-issues failed work (the coordinator's
//! shard re-issue path) needs no connection bookkeeping of its own. The
//! full wire specification lives in `docs/PROTOCOL.md`.

use serde::Value;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Why a remote call failed.
#[derive(Debug)]
pub enum RemoteError {
    /// The connection could not be established, or died mid-call.
    Io(std::io::Error),
    /// The worker answered, but not with a well-formed response line
    /// (invalid JSON, wrong `id` echo, missing fields).
    Protocol(String),
    /// The worker answered with an error response (`"ok": false`); the
    /// payload is its `error` message. The connection stays usable.
    Remote(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "worker connection error: {e}"),
            RemoteError::Protocol(m) => write!(f, "worker protocol violation: {m}"),
            RemoteError::Remote(m) => write!(f, "worker error response: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Io(e)
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One remote serving process, addressed as `host:port`.
///
/// Calls are synchronous and sequential per worker (the service answers
/// a stream's responses in request order, so pipelining within one
/// coordinator↔worker conversation buys nothing); fan-out across
/// workers is the caller's concern — hand each worker to its own thread.
pub struct RemoteWorker {
    addr: String,
    conn: Option<Conn>,
    next_id: u64,
}

impl RemoteWorker {
    /// Creates a handle on `addr` (`host:port`) without connecting yet;
    /// the first call (or an explicit [`RemoteWorker::connect`]) dials.
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteWorker {
            addr: addr.into(),
            conn: None,
            next_id: 1,
        }
    }

    /// The worker's address, as given to [`RemoteWorker::new`].
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `true` while a connection is open (it may still be found dead by
    /// the next call — TCP only reports failure on use).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Establishes the connection if there is none.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] when the worker cannot be reached.
    pub fn connect(&mut self) -> Result<(), RemoteError> {
        if self.conn.is_none() {
            let writer = TcpStream::connect(&self.addr)?;
            let reader = BufReader::new(writer.try_clone()?);
            self.conn = Some(Conn { reader, writer });
        }
        Ok(())
    }

    /// Drops the connection; the next call reconnects.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Sends one request (`cmd` plus `params`, with a fresh numeric `id`)
    /// and blocks for the matching response line. Returns the response's
    /// `result` payload.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Io`] / [`RemoteError::Protocol`] drop the
    /// connection (the conversation's request↔response pairing can no
    /// longer be trusted); [`RemoteError::Remote`] is an orderly error
    /// response and keeps it open.
    pub fn call(&mut self, cmd: &str, params: Vec<(String, Value)>) -> Result<Value, RemoteError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut fields = Vec::with_capacity(params.len() + 2);
        fields.push(("id".to_string(), Value::U64(id)));
        fields.push(("cmd".to_string(), Value::Str(cmd.to_string())));
        fields.extend(params);
        let line = serde_json::to_string(&Value::Object(fields))
            .expect("value serialization is infallible");

        match self.exchange(&line, id) {
            Ok(result) => Ok(result),
            Err(e) => {
                if !matches!(e, RemoteError::Remote(_)) {
                    self.disconnect();
                }
                Err(e)
            }
        }
    }

    fn exchange(&mut self, line: &str, id: u64) -> Result<Value, RemoteError> {
        self.connect()?;
        let conn = self.conn.as_mut().expect("connected above");
        conn.writer.write_all(line.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;

        let mut response = String::new();
        let n = conn.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(RemoteError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed the connection mid-call",
            )));
        }
        let value: Value = serde_json::parse_str(response.trim_end())
            .map_err(|e| RemoteError::Protocol(format!("invalid response JSON: {e}")))?;
        if value.get("id") != Some(&Value::U64(id)) {
            return Err(RemoteError::Protocol(format!(
                "response id mismatch (sent {id}, got {:?})",
                value.get("id")
            )));
        }
        match value.get("ok") {
            Some(&Value::Bool(true)) => Ok(value.get("result").cloned().unwrap_or(Value::Null)),
            Some(&Value::Bool(false)) => Err(RemoteError::Remote(
                value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
            )),
            _ => Err(RemoteError::Protocol(
                "response has no boolean `ok` field".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A scripted one-connection server: answers each received line with
    /// the next canned response (or closes early when the script runs
    /// out).
    fn scripted_server(responses: Vec<Option<String>>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for response in responses {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                match response {
                    Some(r) => {
                        writeln!(writer, "{r}").unwrap();
                        writer.flush().unwrap();
                    }
                    None => return, // scripted death: close mid-call
                }
            }
        });
        addr
    }

    #[test]
    fn call_round_trips_result() {
        let addr = scripted_server(vec![
            Some(r#"{"id":1,"ok":true,"result":{"answer":42}}"#.into()),
            Some(r#"{"id":2,"ok":false,"error":"nope"}"#.into()),
        ]);
        let mut worker = RemoteWorker::new(&addr);
        assert_eq!(worker.addr(), addr);
        let result = worker.call("ping", vec![]).unwrap();
        assert_eq!(result.get("answer"), Some(&Value::U64(42)));
        // An orderly error response keeps the connection open.
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Remote(ref m) if m == "nope"));
        assert!(worker.is_connected());
    }

    #[test]
    fn mid_call_death_is_io_error_and_disconnects() {
        let addr = scripted_server(vec![None]);
        let mut worker = RemoteWorker::new(&addr);
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Io(_)), "got {err}");
        assert!(!worker.is_connected());
    }

    #[test]
    fn id_mismatch_is_a_protocol_error() {
        let addr = scripted_server(vec![Some(r#"{"id":99,"ok":true,"result":null}"#.into())]);
        let mut worker = RemoteWorker::new(&addr);
        let err = worker.call("ping", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Protocol(_)), "got {err}");
        assert!(!worker.is_connected());
    }

    #[test]
    fn unreachable_worker_is_io_error() {
        // A port nothing listens on: connect must fail cleanly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let mut worker = RemoteWorker::new(addr);
        assert!(matches!(
            worker.call("ping", vec![]),
            Err(RemoteError::Io(_))
        ));
    }
}
