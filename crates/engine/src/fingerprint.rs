//! Stable content fingerprints and seed derivation.
//!
//! The memo cache is *content-addressed*: a design point is identified by
//! a fingerprint of its serialized form, not by where in the population
//! (slot, generation, thread) it happened to be sampled. Seeds for inner
//! searches are then derived from fingerprints, which is the property
//! that makes caching sound: two encounters of the same (design, layer)
//! pair run — or reuse — the *identical* inner search, so a warm cache,
//! a cold cache, one thread or sixteen all produce bit-identical results.
//!
//! Hashes are FNV-1a over canonical JSON: deterministic across runs,
//! processes and machines (unlike `DefaultHasher`, whose keys are
//! unspecified across Rust releases), so fingerprints embedded in
//! checkpoint files stay meaningful after resume.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of any serializable value, via its compact JSON form.
pub fn fingerprint<T: serde::Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("shim serialization is infallible");
    fnv1a(json.as_bytes())
}

/// SplitMix64 finalizer — scrambles a 64-bit value so related inputs
/// (consecutive seeds, similar fingerprints) land far apart.
pub fn scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines two 64-bit values into one, order-sensitively.
pub fn mix(a: u64, b: u64) -> u64 {
    scramble(a ^ b.rotate_left(31))
}

/// The seed of an inner (mapping) search, derived from content: the
/// caller's base seed, the design fingerprint, and the layer fingerprint.
/// Slot- and generation-independent by design — see the module docs.
pub fn derive_seed(base_seed: u64, design_fp: u64, layer_fp: u64) -> u64 {
    mix(mix(base_seed, design_fp), layer_fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprints_separate_close_values() {
        let a = fingerprint(&(1u64, 2u64));
        let b = fingerprint(&(1u64, 3u64));
        let c = fingerprint(&(2u64, 2u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn derive_seed_is_content_pure() {
        assert_eq!(derive_seed(7, 100, 200), derive_seed(7, 100, 200));
        assert_ne!(derive_seed(7, 100, 200), derive_seed(8, 100, 200));
        assert_ne!(derive_seed(7, 100, 200), derive_seed(7, 101, 200));
        assert_ne!(derive_seed(7, 100, 200), derive_seed(7, 100, 201));
        // Order sensitivity: design and layer roles must not commute.
        assert_ne!(derive_seed(7, 100, 200), derive_seed(7, 200, 100));
    }
}
