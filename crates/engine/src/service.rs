//! The batch-evaluation service substrate: a JSON-lines wire protocol
//! and a coalescing request batcher.
//!
//! Like the rest of the engine, this module knows nothing about *what*
//! is being evaluated: it frames requests and responses as JSON lines
//! and moves opaque in-flight jobs between connection threads and a
//! scheduler. The co-search semantics (scenarios, designs, pipelines)
//! live in `naas::service`, which layers its handlers on top.
//!
//! ## Wire protocol
//!
//! One request per line, one response per line:
//!
//! ```text
//! → {"id": 1, "cmd": "list_scenarios"}
//! ← {"id": 1, "ok": true, "result": {...}}
//! → {"id": 2, "cmd": "nope"}
//! ← {"id": 2, "ok": false, "error": "unknown command `nope`"}
//! ```
//!
//! `id` is echoed verbatim (any JSON value, defaulting to `null`), so
//! clients may pipeline requests and match responses out of order.
//! Every parse failure still produces a response line — a service must
//! answer every line it consumes, or a pipelining client deadlocks.
//!
//! ## Coalescing
//!
//! [`Batcher`] is a many-producer queue with *drain-all* semantics:
//! connection threads [`Batcher::push`] in-flight requests as they
//! arrive, and the scheduler's [`Batcher::next_batch`] blocks until at
//! least one request is pending, then takes **everything** queued. All
//! concurrent in-flight requests therefore land in one batch, which the
//! scheduler fans out over the work-stealing pool in a single
//! `parallel_map` call — service throughput rides the same batched
//! evaluation path as an in-process population evaluation.

use serde::Value;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The wire-protocol version spoken by this build, negotiated by the
/// `hello` command (see `docs/PROTOCOL.md` § Versioning). Version 1 is
/// the pre-handshake protocol (no `hello` command); version 2 added the
/// handshake, capability lists, and the joint-search extensions of
/// `evaluate_shard`/`search_step`; version 3 made every `evaluate_shard`
/// result carry the candidate's objective vector (`objectives`,
/// advertised by the `"objectives"` capability) alongside the scalar
/// reward — an incompatible reply-shape change, hence the bump. Version
/// 4 introduced the multi-tenant gateway: the `job_*` command family
/// (advertised by the `"jobs"` capability) and a `gateway` section in
/// every `metrics` snapshot — the snapshot-shape change is what makes
/// the bump required rather than additive, since a v4 reader of a
/// serialized `MetricsSnapshot` rejects a v3 image that lacks the new
/// required section. A
/// client and server interoperate only on an exact match — the
/// distributed driver ships serialized configs and search states whose
/// layout follows the crate types, so "close enough" versions are
/// exactly the undefined behaviour the handshake exists to rule out.
pub const PROTOCOL_VERSION: u64 = 4;

/// A parsed service request: the echoed `id`, the command name, and the
/// full request object (commands read their parameters out of it).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Value,
    /// Command name (`list_scenarios`, `score_design`, ...).
    pub cmd: String,
    /// The whole request object; parameter lookups go through
    /// [`Request::param`].
    pub body: Value,
}

/// A request line that could not be framed. Carries whatever `id` could
/// still be recovered from the line, so even a malformed request's error
/// response stays correlatable by a pipelining client.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseFailure {
    /// The request's `id` if the line at least parsed as a JSON object
    /// carrying one; `Value::Null` otherwise.
    pub id: Value,
    /// Human-readable reason.
    pub message: String,
}

impl Request {
    /// Parses one JSONL request line.
    ///
    /// # Errors
    ///
    /// A [`ParseFailure`] when the line is not a JSON object or has no
    /// string `cmd` field. The caller wraps it with [`error_line`] so
    /// malformed input still gets a response, echoing the recovered id.
    pub fn parse(line: &str) -> Result<Request, ParseFailure> {
        let body: Value = serde_json::parse_str(line).map_err(|e| ParseFailure {
            id: Value::Null,
            message: format!("invalid request JSON: {e}"),
        })?;
        if !matches!(body, Value::Object(_)) {
            return Err(ParseFailure {
                id: Value::Null,
                message: format!("expected a request object, got {}", kind(&body)),
            });
        }
        let id = body.get("id").cloned().unwrap_or(Value::Null);
        let cmd = body
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| ParseFailure {
                id: id.clone(),
                message: "request has no string `cmd` field".to_string(),
            })?
            .to_string();
        Ok(Request { id, cmd, body })
    }

    /// Looks up a request parameter (`null` and absent are both `None`).
    pub fn param(&self, key: &str) -> Option<&Value> {
        match self.body.get(key) {
            None | Some(Value::Null) => None,
            some => some,
        }
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_line(id: &Value, result: Value) -> String {
    let response = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("result".to_string(), result),
    ]);
    serde_json::to_string(&response).expect("value serialization is infallible")
}

/// Renders an error response line (no trailing newline).
pub fn error_line(id: &Value, message: &str) -> String {
    let response = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.to_string())),
    ]);
    serde_json::to_string(&response).expect("value serialization is infallible")
}

struct BatcherState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A blocking multi-producer queue with drain-all consumption — the
/// coalescing scheduler's inbox. See the module docs for the role it
/// plays in the service.
///
/// # Examples
///
/// ```
/// use naas_engine::Batcher;
///
/// let batcher: Batcher<u32> = Batcher::new();
/// batcher.push(1);
/// batcher.push(2);
/// // The consumer coalesces: everything pending arrives as one batch.
/// assert_eq!(batcher.next_batch(), Some(vec![1, 2]));
///
/// // Closing refuses producers and drains the rest.
/// batcher.push(3);
/// batcher.close();
/// assert!(!batcher.push(4));
/// assert_eq!(batcher.next_batch(), Some(vec![3]));
/// assert_eq!(batcher.next_batch(), None);
/// ```
pub struct Batcher<T> {
    state: Mutex<BatcherState<T>>,
    ready: Condvar,
}

impl<T> Default for Batcher<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Batcher<T> {
    /// Creates an empty, open batcher.
    pub fn new() -> Self {
        Batcher {
            state: Mutex::new(BatcherState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    // The protected state is a plain queue, valid even if a producer
    // died mid-push; treating poison as fatal would take the whole
    // service down with it.
    fn lock(&self) -> std::sync::MutexGuard<'_, BatcherState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one in-flight item. Returns `false` (dropping the item)
    /// if the batcher is already closed.
    ///
    /// # Multi-consumer contract
    ///
    /// A push wakes exactly **one** blocked consumer (`notify_one`), not
    /// all of them — with several [`Batcher::next_batch`] loops parked
    /// (the gateway runs one per executor), one item wakes one thread
    /// and the rest stay asleep instead of stampeding the lock only to
    /// find the queue already drained. A consumer that does lose the
    /// race (woken between a sibling's drain and its own lock
    /// acquisition) observes an empty queue and re-blocks on the
    /// condvar; it never spins. [`Batcher::close`] is the one event
    /// every consumer must observe, so it alone uses `notify_all`.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.lock();
        if state.closed {
            return false;
        }
        state.queue.push_back(item);
        let depth = state.queue.len() as u64;
        drop(state);
        crate::telemetry::metrics()
            .batcher
            .max_queue_depth
            .set_max(depth);
        self.ready.notify_one();
        true
    }

    /// Closes the batcher: producers are refused from now on, and
    /// [`Batcher::next_batch`] returns `None` once the queue drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Blocks until at least one item is queued, then drains and returns
    /// **all** queued items (the coalescing step). Returns `None` when
    /// the batcher is closed and empty.
    ///
    /// Safe to call from many threads at once: each queued item is
    /// delivered to exactly one consumer (the drain happens under the
    /// state lock), and after [`Batcher::close`] every blocked consumer
    /// unblocks and returns `None` once the queue is empty. See the
    /// wakeup contract on [`Batcher::push`].
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut state = self.lock();
        loop {
            if !state.queue.is_empty() {
                let batch: Vec<T> = state.queue.drain(..).collect();
                let batcher_metrics = &crate::telemetry::metrics().batcher;
                batcher_metrics.batches.inc();
                batcher_metrics.requests.add(batch.len() as u64);
                batcher_metrics.batch_size.observe(batch.len() as u64);
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Items currently queued (diagnostic).
    pub fn pending(&self) -> usize {
        self.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parse_extracts_id_cmd_and_params() {
        let req = Request::parse(r#"{"id": 7, "cmd": "score_design", "scenario": "x"}"#).unwrap();
        assert_eq!(req.id, Value::U64(7));
        assert_eq!(req.cmd, "score_design");
        assert_eq!(req.param("scenario").unwrap().as_str(), Some("x"));
        assert!(req.param("missing").is_none());
    }

    #[test]
    fn parse_defaults_id_to_null_and_ignores_null_params() {
        let req = Request::parse(r#"{"cmd": "list_scenarios", "extra": null}"#).unwrap();
        assert_eq!(req.id, Value::Null);
        assert!(req.param("extra").is_none());
    }

    #[test]
    fn parse_rejects_garbage_with_messages() {
        assert!(Request::parse("{not json")
            .unwrap_err()
            .message
            .contains("invalid"));
        assert!(Request::parse("[1,2]")
            .unwrap_err()
            .message
            .contains("object"));
        assert!(Request::parse(r#"{"id": 1}"#)
            .unwrap_err()
            .message
            .contains("cmd"));
        assert!(Request::parse(r#"{"cmd": 42}"#)
            .unwrap_err()
            .message
            .contains("cmd"));
    }

    #[test]
    fn parse_failure_recovers_the_request_id() {
        // A malformed request that still framed as an object keeps its
        // id, so the error response stays correlatable.
        let failure = Request::parse(r#"{"id": 7, "cmd": 42}"#).unwrap_err();
        assert_eq!(failure.id, Value::U64(7));
        // Unframeable lines fall back to null.
        assert_eq!(Request::parse("{torn").unwrap_err().id, Value::Null);
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = ok_line(&Value::U64(3), Value::Str("done".into()));
        assert_eq!(ok, r#"{"id":3,"ok":true,"result":"done"}"#);
        let err = error_line(&Value::Null, "bad \"input\"\nline");
        assert!(!err.contains('\n'), "must stay one line: {err}");
        let back: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(back.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn batcher_coalesces_everything_pending() {
        let b: Batcher<u32> = Batcher::new();
        for i in 0..5 {
            assert!(b.push(i));
        }
        assert_eq!(b.pending(), 5);
        assert_eq!(b.next_batch().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn closed_batcher_refuses_producers_and_drains() {
        let b: Batcher<u32> = Batcher::new();
        b.push(1);
        b.close();
        assert!(!b.push(2));
        assert_eq!(b.next_batch().unwrap(), vec![1]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn next_batch_blocks_until_a_producer_arrives() {
        let b: Arc<Batcher<u32>> = Arc::new(Batcher::new());
        let consumer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.next_batch())
        };
        // Give the consumer time to block, then wake it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.push(9);
        assert_eq!(consumer.join().unwrap().unwrap(), vec![9]);
    }

    #[test]
    fn multiple_consumers_share_the_queue_without_loss_or_spin() {
        // Regression test for the gateway's multi-consumer use: several
        // next_batch loops drain one batcher concurrently. Every pushed
        // item must be consumed exactly once, and every consumer must
        // terminate after close() — a lost wakeup would hang the join,
        // a stampeding wakeup would show up as duplicated items.
        let b: Arc<Batcher<usize>> = Arc::new(Batcher::new());
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut taken = Vec::new();
                    while let Some(batch) = b.next_batch() {
                        taken.extend(batch);
                    }
                    taken
                })
            })
            .collect();
        for i in 0..400 {
            assert!(b.push(i));
            if i % 7 == 0 {
                // Let consumers park between bursts so the single-wakeup
                // path (not just the drain-all path) is exercised.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        b.close();
        let mut all = Vec::new();
        for consumer in consumers {
            all.extend(consumer.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let b: Arc<Batcher<usize>> = Arc::new(Batcher::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let b = Arc::clone(&b);
                scope.spawn(move || {
                    for i in 0..50 {
                        b.push(t * 50 + i);
                    }
                });
            }
        });
        b.close();
        let mut all = Vec::new();
        while let Some(batch) = b.next_batch() {
            all.extend(batch);
        }
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
