//! JSON checkpointing for long-running searches.
//!
//! Any serializable search state can be frozen to disk and restored
//! bit-exactly: the serde shim keeps `u64` / `f64` identity through JSON,
//! and the workspace's RNGs serialize their raw state, so a resumed
//! search continues the exact trajectory of an uninterrupted one. Writes
//! go through a sibling temp file plus rename, so an interrupted save
//! never corrupts the previous checkpoint.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not decode as the expected state.
    Format(serde::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde::Error> for CheckpointError {
    fn from(e: serde::Error) -> Self {
        CheckpointError::Format(e)
    }
}

/// Saves `state` as pretty-printed JSON at `path`, atomically and
/// durably: the staging file is flushed to stable storage (`sync_all`)
/// *before* the rename, so a crash at any point leaves either the old
/// checkpoint or the complete new one — never a truncated file renamed
/// into place. After the rename the parent directory is synced
/// best-effort so the rename itself survives a power loss.
pub fn save<T: Serialize>(path: &Path, state: &T) -> Result<(), CheckpointError> {
    use std::io::Write;
    let json = serde_json::to_string_pretty(state)?;
    // Temp name embeds the full target file name and the pid:
    // checkpoints sharing a stem (`ckpt.1`, `ckpt.2`) or written by
    // concurrent processes never collide on the staging file.
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(std::io::Error::other("checkpoint path has no file name"))
        })?
        .to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(json.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    // Durability of the rename is best-effort: directory fsync is not
    // supported everywhere, and the data itself is already safe.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

/// Loads a previously saved state from `path`.
pub fn load<T: Deserialize>(path: &Path) -> Result<T, CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// When and where a search writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Target file.
    pub path: PathBuf,
    /// Save every `every` completed iterations (`1` = every iteration);
    /// a final checkpoint is always written when the search completes.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` after every iteration.
    pub fn every_iteration(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every: 1,
        }
    }

    /// `true` if a checkpoint is due after completing `iteration`
    /// (0-based).
    pub fn due_after(&self, iteration: usize) -> bool {
        self.every > 0 && (iteration + 1).is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct State {
        iteration: usize,
        rng_state: [u64; 4],
        best: Option<f64>,
        history: Vec<f64>,
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("naas-engine-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_is_exact() {
        let state = State {
            iteration: 7,
            rng_state: [u64::MAX, 1, 2, 3],
            best: Some(1.25e-9),
            history: vec![f64::INFINITY, 3.5, 0.1],
        };
        let path = tmp_path("roundtrip");
        save(&path, &state).unwrap();
        let back: State = load(&path).unwrap();
        assert_eq!(back, state);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load::<State>(Path::new("/nonexistent/naas.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "{not json").unwrap();
        let err = load::<State>(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_a_clean_format_error() {
        // Simulates the aftermath of a crash with a non-atomic writer: a
        // prefix of valid JSON. Loading must fail cleanly (so the caller
        // can fall back / restart), never decode garbage.
        let state = State {
            iteration: 3,
            rng_state: [9, 9, 9, 9],
            best: Some(2.5),
            history: vec![1.0, 0.5],
        };
        let path = tmp_path("truncated");
        save(&path, &state).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load::<State>(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
        // Recovery: a subsequent save fully replaces the damaged file.
        save(&path, &state).unwrap();
        assert_eq!(load::<State>(&path).unwrap(), state);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_staging_file_does_not_break_save() {
        // A crash can leave a previous process's `.tmp` behind; saving
        // again must succeed and the target must hold the new state.
        let state = State {
            iteration: 1,
            rng_state: [1, 2, 3, 4],
            best: None,
            history: vec![],
        };
        let path = tmp_path("stale-tmp");
        let stale = path.with_file_name(format!(
            "{}.{}.tmp",
            path.file_name().unwrap().to_str().unwrap(),
            std::process::id()
        ));
        std::fs::write(&stale, "{partial garbage").unwrap();
        save(&path, &state).unwrap();
        assert_eq!(load::<State>(&path).unwrap(), state);
        // The staging file was consumed by the rename.
        assert!(!stale.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_cadence() {
        let p = CheckpointPolicy {
            path: "x.json".into(),
            every: 3,
        };
        assert!(!p.due_after(0));
        assert!(!p.due_after(1));
        assert!(p.due_after(2));
        assert!(p.due_after(5));
        assert!(CheckpointPolicy::every_iteration("y.json").due_after(0));
    }
}
