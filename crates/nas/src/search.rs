//! Evolutionary subnet search under an accuracy constraint —
//! the adapted Once-For-All search loop of paper §II-C.

use crate::accuracy::AccuracyModel;
use crate::space::{ResNet50Space, Subnet};
use naas_ir::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the NAS evolution (inner loop of Fig. 1's "Integrated
/// with NAS" path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasConfig {
    /// Subnets per generation.
    pub population: usize,
    /// Generations ("until the NAS optimizer reaches its iteration
    /// limitations").
    pub generations: usize,
    /// Fraction of each generation kept as parents.
    pub parent_fraction: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Accuracy floor (percent); candidates below it are resampled —
    /// the "pre-defined accuracy requirement" of §II-C.
    pub accuracy_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NasConfig {
    fn default() -> Self {
        NasConfig {
            population: 16,
            generations: 8,
            parent_fraction: 0.25,
            mutation_prob: 0.2,
            accuracy_floor: 76.0,
            seed: 0,
        }
    }
}

/// Result of a NAS evolution: the best subnet with its reward and
/// predicted accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NasOutcome {
    /// Best genotype found.
    pub subnet: Subnet,
    /// Its reward (EDP; lower is better).
    pub reward: f64,
    /// Its predicted accuracy (percent).
    pub accuracy: f64,
    /// Subnets evaluated (accuracy-feasible candidates only).
    pub evaluations: usize,
}

/// Runs the evolutionary subnet search.
///
/// `evaluate` scores a lowered network (returns EDP, lower better;
/// `None` marks an infeasible evaluation, e.g. no valid mapping found —
/// such candidates are discarded). Accuracy screening uses `accuracy_model`
/// *before* paying for evaluation, mirroring the paper's fast
/// OFA-accuracy gate.
///
/// Returns `None` when no feasible candidate was found within the budget.
///
/// This is the scalar wrapper over [`SubnetSearchDriver`]: it drains
/// each generation's pending subnets in order and feeds the scores
/// straight back, which is exactly the original single-loop search.
pub fn search_subnet(
    cfg: &NasConfig,
    accuracy_model: &AccuracyModel,
    mut evaluate: impl FnMut(&Network) -> Option<f64>,
) -> Option<NasOutcome> {
    let mut driver = SubnetSearchDriver::new(cfg, accuracy_model);
    while !driver.is_done() {
        let results: Vec<Option<f64>> = driver
            .pending()
            .iter()
            .map(|s| evaluate(&s.to_network()))
            .collect();
        driver.absorb(&results);
    }
    driver.finish()
}

/// The NAS evolution as an explicit state machine: each generation is
/// exposed as a batch of accuracy-feasible subnets needing an EDP score
/// ([`pending`](Self::pending)), and [`absorb`](Self::absorb) folds the
/// scores back and breeds the next generation. [`search_subnet`] is the
/// scalar wrapper (evaluate pending in order, absorb, repeat) and the
/// two are bit-identical by construction: the driver consumes the RNG in
/// exactly the order of the original loop, and accuracy screening is a
/// pure predicate, so *when* it runs relative to evaluation is
/// invisible.
///
/// The point of the split is sub-candidate sharding: a distributed
/// coordinator can interleave the pending batches of *many* drivers
/// (one per accelerator candidate) into one work-unit pool, score units
/// anywhere, and feed each driver its own results — which is how joint
/// mode saturates a fleet wider than its population
/// (`naas::distributed`, `joint_unit` wire mode).
#[derive(Debug, Clone)]
pub struct SubnetSearchDriver<'a> {
    cfg: NasConfig,
    accuracy_model: &'a AccuracyModel,
    space: ResNet50Space,
    rng: SmallRng,
    generation: usize,
    evaluations: usize,
    best: Option<NasOutcome>,
    /// Accuracy-feasible members of the current population, in
    /// population order — the subnets whose EDP the caller owes us.
    pending: Vec<Subnet>,
    done: bool,
}

impl<'a> SubnetSearchDriver<'a> {
    /// Seeds the initial population (consuming the RNG exactly as
    /// [`search_subnet`] always has) and screens generation 0.
    pub fn new(cfg: &NasConfig, accuracy_model: &'a AccuracyModel) -> Self {
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Seed generation: accuracy-feasible random subnets (plus the
        // baseline, which is always feasible at the default floor).
        let mut population: Vec<Subnet> = vec![Subnet::resnet50_baseline()];
        let mut attempts = 0;
        while population.len() < cfg.population && attempts < cfg.population * 50 {
            attempts += 1;
            let s = space.sample(&mut rng);
            if accuracy_model.predict(&s) >= cfg.accuracy_floor {
                population.push(s);
            }
        }

        let mut driver = SubnetSearchDriver {
            cfg: *cfg,
            accuracy_model,
            space,
            rng,
            generation: 0,
            evaluations: 0,
            best: None,
            pending: Vec::new(),
            done: cfg.generations == 0,
        };
        if !driver.done {
            driver.pending = driver.screen(&population);
        }
        driver
    }

    /// Accuracy screening is a pure predicate (no RNG), so hoisting it
    /// out of the scoring loop cannot change the trajectory.
    fn screen(&self, population: &[Subnet]) -> Vec<Subnet> {
        population
            .iter()
            .filter(|s| self.accuracy_model.predict(s) >= self.cfg.accuracy_floor)
            .copied()
            .collect()
    }

    /// The current generation's subnets awaiting an EDP score, in
    /// population order. Empty either when the search is done or when
    /// the whole population failed the accuracy screen (absorb an empty
    /// result batch to trigger the re-seed path).
    pub fn pending(&self) -> &[Subnet] {
        if self.done {
            &[]
        } else {
            &self.pending
        }
    }

    /// `true` once every configured generation has been absorbed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Folds one EDP result per [`pending`](Self::pending) subnet (same
    /// order; `None` = infeasible evaluation) into the search: updates
    /// the incumbent, breeds the next generation — or re-seeds when the
    /// generation produced no feasible score — and advances.
    ///
    /// # Panics
    ///
    /// Panics if called on a finished driver or with a result count
    /// that does not match `pending().len()`.
    pub fn absorb(&mut self, results: &[Option<f64>]) {
        assert!(!self.done, "absorb on a finished driver");
        assert_eq!(
            results.len(),
            self.pending.len(),
            "one result per pending subnet"
        );
        let cfg = self.cfg;

        // Score the generation.
        let mut scored: Vec<(Subnet, f64)> = Vec::with_capacity(self.pending.len());
        for (s, result) in std::mem::take(&mut self.pending).iter().zip(results) {
            if let Some(edp) = *result {
                self.evaluations += 1;
                scored.push((*s, edp));
                let better = self.best.as_ref().is_none_or(|b| edp < b.reward);
                if better {
                    self.best = Some(NasOutcome {
                        subnet: *s,
                        reward: edp,
                        accuracy: self.accuracy_model.predict(s),
                        evaluations: self.evaluations,
                    });
                }
            }
        }

        let population: Vec<Subnet> = if scored.is_empty() {
            // Re-seed and retry.
            (0..cfg.population)
                .map(|_| self.space.sample(&mut self.rng))
                .collect()
        } else {
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let parents: Vec<Subnet> = scored
                .iter()
                .take(((scored.len() as f64 * cfg.parent_fraction).ceil() as usize).max(1))
                .map(|(s, _)| *s)
                .collect();

            // Next generation: parents + mutations + crossovers, all
            // accuracy-screened.
            let mut next: Vec<Subnet> = parents.clone();
            let mut guard = 0;
            while next.len() < cfg.population && guard < cfg.population * 100 {
                guard += 1;
                let i = guard % parents.len();
                let j = (guard / 2) % parents.len();
                let child = if guard % 2 == 0 {
                    self.space
                        .mutate(&parents[i], cfg.mutation_prob, &mut self.rng)
                } else {
                    let x = self
                        .space
                        .crossover(&parents[i], &parents[j], &mut self.rng);
                    self.space.mutate(&x, cfg.mutation_prob, &mut self.rng)
                };
                if self.accuracy_model.predict(&child) >= cfg.accuracy_floor {
                    next.push(child);
                }
            }
            next
        };

        self.generation += 1;
        if self.generation >= cfg.generations {
            self.done = true;
        } else {
            self.pending = self.screen(&population);
        }
    }

    /// Consumes the driver into the search outcome (best subnet with the
    /// search-wide evaluation count), or `None` when nothing feasible
    /// was ever scored.
    pub fn finish(self) -> Option<NasOutcome> {
        let evaluations = self.evaluations;
        self.best.map(|mut b| {
            b.evaluations = evaluations;
            b
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_lower_macs_at_same_accuracy_floor() {
        // With EDP proxied by MACs, the search should find a subnet with
        // fewer MACs than baseline while respecting the accuracy floor.
        let cfg = NasConfig {
            population: 12,
            generations: 6,
            seed: 3,
            ..NasConfig::default()
        };
        let model = AccuracyModel::default();
        let out = search_subnet(&cfg, &model, |net| Some(net.total_macs() as f64))
            .expect("search finds a feasible subnet");
        assert!(out.accuracy >= cfg.accuracy_floor);
        let base_macs = Subnet::resnet50_baseline().to_network().total_macs();
        assert!(
            out.reward < base_macs as f64,
            "search should shrink MACs: {} vs {}",
            out.reward,
            base_macs
        );
    }

    #[test]
    fn respects_strict_accuracy_floor() {
        let cfg = NasConfig {
            accuracy_floor: 78.5,
            population: 10,
            generations: 4,
            seed: 9,
            ..NasConfig::default()
        };
        let model = AccuracyModel::default();
        if let Some(out) = search_subnet(&cfg, &model, |net| Some(net.total_macs() as f64)) {
            assert!(out.accuracy >= 78.5);
        }
    }

    #[test]
    fn infeasible_evaluator_yields_none() {
        let cfg = NasConfig {
            population: 4,
            generations: 2,
            seed: 1,
            ..NasConfig::default()
        };
        let out = search_subnet(&cfg, &AccuracyModel::default(), |_| None);
        assert!(out.is_none());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NasConfig {
            population: 8,
            generations: 3,
            seed: 42,
            ..NasConfig::default()
        };
        let m = AccuracyModel::default();
        let a = search_subnet(&cfg, &m, |net| Some(net.total_macs() as f64)).unwrap();
        let b = search_subnet(&cfg, &m, |net| Some(net.total_macs() as f64)).unwrap();
        assert_eq!(a.subnet, b.subnet);
        assert_eq!(a.reward, b.reward);
    }
}
