//! Deterministic ImageNet-accuracy surrogate for elastic ResNet-50
//! subnets (the substitution for OFA supernet evaluation; DESIGN.md §2).

use crate::space::{Subnet, RATIO_CHOICES, WIDTH_CHOICES};
use serde::{Deserialize, Serialize};

/// Calibrated accuracy predictor.
///
/// The functional form is logarithmic in each capacity knob with a
/// quadratic damping term (diminishing returns), anchored so that:
///
/// * the standard ResNet-50 genotype predicts **76.3 %** (its well-known
///   ImageNet top-1);
/// * the largest subnet of the space predicts just under **80 %**,
///   matching the OFA-ResNet50 ceiling the paper's Fig. 10 operates in
///   (the best co-searched point reports 79.0);
/// * shrinking any knob monotonically lowers accuracy, steeply below
///   160 px (small-resolution cliff), gently near the top.
///
/// ```
/// use naas_nas::{AccuracyModel, Subnet};
/// let model = AccuracyModel::default();
/// let mut small = Subnet::resnet50_baseline();
/// small.resolution = 128;
/// small.width_idx = 0;
/// assert!(model.predict(&small) < model.predict(&Subnet::resnet50_baseline()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Accuracy of the anchor genotype (standard ResNet-50).
    pub base_accuracy: f64,
    /// Resolution sensitivity (per log-ratio to 224).
    pub res_coeff: f64,
    /// Width sensitivity (per log width multiplier).
    pub width_coeff: f64,
    /// Depth sensitivity (per log-ratio of blocks to 16).
    pub depth_coeff: f64,
    /// Bottleneck-ratio sensitivity (per log-ratio to 0.25).
    pub ratio_coeff: f64,
    /// Quadratic damping of over-capacity gains.
    pub damping: f64,
    /// Hard accuracy ceiling of the space.
    pub ceiling: f64,
}

impl Default for AccuracyModel {
    fn default() -> Self {
        AccuracyModel {
            base_accuracy: 76.3,
            res_coeff: 8.0,
            width_coeff: 6.0,
            depth_coeff: 5.5,
            ratio_coeff: 3.6,
            damping: 0.03,
            ceiling: 79.9,
        }
    }
}

impl AccuracyModel {
    /// Predicted ImageNet top-1 accuracy (percent) of a subnet.
    pub fn predict(&self, s: &Subnet) -> f64 {
        let res = (s.resolution.max(128) / 32 * 32) as f64; // as lowered
        let w = WIDTH_CHOICES[s.width_idx.min(WIDTH_CHOICES.len() - 1)];
        let blocks = s.total_blocks() as f64;
        let mean_ratio: f64 = s
            .ratio_idx
            .iter()
            .map(|&i| RATIO_CHOICES[i.min(RATIO_CHOICES.len() - 1)])
            .sum::<f64>()
            / 4.0;

        let g_res = (res / 224.0).ln();
        let g_w = w.ln();
        let g_d = (blocks / 16.0).ln();
        let g_r = (mean_ratio / 0.25).ln();

        let gain = self.res_coeff * g_res
            + self.width_coeff * g_w
            + self.depth_coeff * g_d
            + self.ratio_coeff * g_r;
        // Damp only positive capacity overshoot: extra capacity saturates.
        let overshoot = gain.max(0.0);
        let acc = self.base_accuracy + gain - self.damping * overshoot * overshoot;
        acc.min(self.ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ResNet50Space;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_anchors_at_published_accuracy() {
        let acc = AccuracyModel::default().predict(&Subnet::resnet50_baseline());
        assert!((acc - 76.3).abs() < 1e-9, "got {acc}");
    }

    #[test]
    fn max_subnet_approaches_ofa_ceiling() {
        let max = Subnet {
            width_idx: 2,
            depths: [4, 4, 6, 4],
            ratio_idx: [2, 2, 2, 2],
            resolution: 256,
        };
        let acc = AccuracyModel::default().predict(&max);
        assert!(acc > 77.5 && acc <= 79.9, "got {acc}");
    }

    #[test]
    fn monotone_in_every_knob() {
        let m = AccuracyModel::default();
        let base = Subnet::resnet50_baseline();
        // Lower width.
        let mut v = base;
        v.width_idx = 0;
        assert!(m.predict(&v) < m.predict(&base));
        // Lower resolution.
        let mut v = base;
        v.resolution = 128;
        assert!(m.predict(&v) < m.predict(&base));
        // Fewer blocks.
        let mut v = base;
        v.depths = [2, 2, 4, 2];
        assert!(m.predict(&v) < m.predict(&base));
        // Thinner bottlenecks.
        let mut v = base;
        v.ratio_idx = [0, 0, 0, 0];
        assert!(m.predict(&v) < m.predict(&base));
    }

    #[test]
    fn whole_space_is_within_plausible_range() {
        let m = AccuracyModel::default();
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let s = space.sample(&mut rng);
            let acc = m.predict(&s);
            assert!(
                (60.0..=79.9).contains(&acc),
                "implausible accuracy {acc} for {s:?}"
            );
        }
    }

    #[test]
    fn accuracy_correlates_with_macs() {
        // Across random pairs, the larger-MAC subnet should usually be
        // more accurate — a sanity property of any capacity surrogate.
        let m = AccuracyModel::default();
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut agree = 0;
        let n = 200;
        for _ in 0..n {
            let a = space.sample(&mut rng);
            let b = space.sample(&mut rng);
            let (ma, mb) = (a.to_network().total_macs(), b.to_network().total_macs());
            let (pa, pb) = (m.predict(&a), m.predict(&b));
            if (ma > mb) == (pa > pb) || (ma == mb) {
                agree += 1;
            }
        }
        assert!(agree * 100 / n >= 75, "agreement only {agree}/{n}");
    }
}
