//! The elastic ResNet-50 design space (paper §III-A0c).

use naas_ir::{models, Network};
use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Width-multiplier choices of the paper's space.
pub const WIDTH_CHOICES: [f64; 3] = [0.65, 0.8, 1.0];
/// Bottleneck reduction-ratio choices of the paper's space.
pub const RATIO_CHOICES: [f64; 3] = [0.20, 0.25, 0.35];
/// Per-stage depth bounds: min and max bottleneck blocks
/// (max depths sum to the paper's "18 residual blocks at maximum").
pub const DEPTH_BOUNDS: [(usize, usize); 4] = [(2, 4), (2, 4), (4, 6), (2, 4)];
/// Input resolution range and stride (128…256 step 16).
pub const RESOLUTIONS: (u64, u64, u64) = (128, 256, 16);

/// One subnet of the elastic ResNet-50 space: the NAS genotype.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subnet {
    /// Index into [`WIDTH_CHOICES`].
    pub width_idx: usize,
    /// Bottleneck blocks per stage.
    pub depths: [usize; 4],
    /// Index into [`RATIO_CHOICES`], per stage.
    pub ratio_idx: [usize; 4],
    /// Input resolution (multiple of 32 for the ResNet stem; the paper's
    /// 16-strided grid is rounded to the nearest valid value on lowering).
    pub resolution: u64,
}

impl Subnet {
    /// The standard ResNet-50 point of the space (width 1.0, depths
    /// 3-4-6-3, ratio 0.25, 224×224).
    pub fn resnet50_baseline() -> Self {
        Subnet {
            width_idx: 2,
            depths: [3, 4, 6, 3],
            ratio_idx: [1, 1, 1, 1],
            resolution: 224,
        }
    }

    /// Width multiplier of this subnet.
    pub fn width(&self) -> f64 {
        WIDTH_CHOICES[self.width_idx]
    }

    /// Per-stage reduction ratios.
    pub fn ratios(&self) -> [f64; 4] {
        self.ratio_idx.map(|i| RATIO_CHOICES[i])
    }

    /// Total bottleneck blocks.
    pub fn total_blocks(&self) -> usize {
        self.depths.iter().sum()
    }

    /// Lowers the genotype to a concrete layer list for cost evaluation.
    ///
    /// Resolutions are snapped to the nearest multiple of 32 ≥ 128 so the
    /// five stride-2 stages stay shape-consistent.
    pub fn to_network(&self) -> Network {
        let res = (self.resolution.max(128) / 32) * 32;
        models::resnet50_elastic(res, self.width(), self.depths, self.ratios())
    }
}

/// The paper's subnet space with sampling and mutation operators for the
/// adapted OFA evolutionary search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNet50Space;

impl ResNet50Space {
    /// The space exactly as configured in §III-A0c.
    pub fn paper() -> Self {
        ResNet50Space
    }

    /// `true` if the genotype's fields are all within the space.
    pub fn contains(&self, s: &Subnet) -> bool {
        s.width_idx < WIDTH_CHOICES.len()
            && s.ratio_idx.iter().all(|&r| r < RATIO_CHOICES.len())
            && s.depths
                .iter()
                .zip(DEPTH_BOUNDS)
                .all(|(&d, (lo, hi))| d >= lo && d <= hi)
            && s.resolution >= RESOLUTIONS.0
            && s.resolution <= RESOLUTIONS.1
            && (s.resolution - RESOLUTIONS.0).is_multiple_of(RESOLUTIONS.2)
    }

    /// Samples a uniform random subnet.
    pub fn sample(&self, rng: &mut SmallRng) -> Subnet {
        let (lo, hi, step) = RESOLUTIONS;
        let steps = (hi - lo) / step + 1;
        Subnet {
            width_idx: rng.random_range(0..WIDTH_CHOICES.len()),
            depths: std::array::from_fn(|i| {
                let (dlo, dhi) = DEPTH_BOUNDS[i];
                rng.random_range(dlo..=dhi)
            }),
            ratio_idx: std::array::from_fn(|_| rng.random_range(0..RATIO_CHOICES.len())),
            resolution: lo + rng.random_range(0..steps) * step,
        }
    }

    /// Mutates each gene independently with probability `prob`.
    pub fn mutate(&self, s: &Subnet, prob: f64, rng: &mut SmallRng) -> Subnet {
        let fresh = self.sample(rng);
        let mut out = *s;
        if rng.random_range(0.0..1.0) < prob {
            out.width_idx = fresh.width_idx;
        }
        for i in 0..4 {
            if rng.random_range(0.0..1.0) < prob {
                out.depths[i] = fresh.depths[i];
            }
            if rng.random_range(0.0..1.0) < prob {
                out.ratio_idx[i] = fresh.ratio_idx[i];
            }
        }
        if rng.random_range(0.0..1.0) < prob {
            out.resolution = fresh.resolution;
        }
        out
    }

    /// Uniform crossover of two parents.
    pub fn crossover(&self, a: &Subnet, b: &Subnet, rng: &mut SmallRng) -> Subnet {
        let pick = |rng: &mut SmallRng| rng.random_range(0..2u8) == 0;
        Subnet {
            width_idx: if pick(rng) { a.width_idx } else { b.width_idx },
            depths: std::array::from_fn(|i| if pick(rng) { a.depths[i] } else { b.depths[i] }),
            ratio_idx: std::array::from_fn(|i| {
                if pick(rng) {
                    a.ratio_idx[i]
                } else {
                    b.ratio_idx[i]
                }
            }),
            resolution: if pick(rng) {
                a.resolution
            } else {
                b.resolution
            },
        }
    }

    /// Size of the genotype space (for documentation/tests): widths ×
    /// depths × ratios × resolutions.
    pub fn cardinality(&self) -> u64 {
        let depths: u64 = DEPTH_BOUNDS
            .iter()
            .map(|(lo, hi)| (hi - lo + 1) as u64)
            .product();
        let ratios = RATIO_CHOICES.len().pow(4) as u64;
        let res = (RESOLUTIONS.1 - RESOLUTIONS.0) / RESOLUTIONS.2 + 1;
        WIDTH_CHOICES.len() as u64 * depths * ratios * res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn baseline_is_in_space() {
        assert!(ResNet50Space::paper().contains(&Subnet::resnet50_baseline()));
    }

    #[test]
    fn baseline_lowering_matches_resnet50() {
        let net = Subnet::resnet50_baseline().to_network();
        let reference = models::resnet50(224);
        assert_eq!(net.total_macs(), reference.total_macs());
        assert_eq!(net.len(), reference.len());
    }

    #[test]
    fn samples_stay_in_space() {
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let s = space.sample(&mut rng);
            assert!(space.contains(&s));
            assert!(s.total_blocks() <= 18);
            assert!(s.total_blocks() >= 10);
        }
    }

    #[test]
    fn mutation_and_crossover_stay_in_space() {
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(6);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..100 {
            assert!(space.contains(&space.mutate(&a, 0.5, &mut rng)));
            assert!(space.contains(&space.crossover(&a, &b, &mut rng)));
        }
    }

    #[test]
    fn zero_prob_mutation_is_identity() {
        let space = ResNet50Space::paper();
        let mut rng = SmallRng::seed_from_u64(7);
        let s = space.sample(&mut rng);
        assert_eq!(space.mutate(&s, 0.0, &mut rng), s);
    }

    #[test]
    fn odd_resolutions_snap_on_lowering() {
        let mut s = Subnet::resnet50_baseline();
        s.resolution = 144; // valid in grid, not multiple of 32
        let net = s.to_network();
        let stem = &net.layers()[0];
        assert_eq!(stem.in_y(), 128); // snapped down
    }

    #[test]
    fn cardinality_is_large() {
        // 3 × 81 × 81 × 9 = 177147 genotypes *of structure*; the paper's
        // 10¹³ counts per-block ratio/width combinations — ours is the
        // stage-granular version of the same space.
        assert!(ResNet50Space::paper().cardinality() > 100_000);
    }
}
