//! # naas-nas — Once-For-All-style neural architecture search space
//!
//! The third optimization level of NAAS (paper §II-C, §III-A0c, Fig. 10):
//! an elastic ResNet-50 design space following the open-sourced
//! Once-For-All library — 3 width multipliers (0.65, 0.8, 1.0), up to 18
//! bottleneck blocks across 4 stages, 3 bottleneck reduction ratios
//! (0.20, 0.25, 0.35) and input resolutions 128…256 at stride 16 —
//! about 10¹³ subnets.
//!
//! ## Accuracy surrogate (substitution, DESIGN.md §2)
//!
//! The paper extracts subnet accuracies from a pre-trained OFA supernet;
//! training one is out of scope for this reproduction, so
//! [`AccuracyModel`] provides a deterministic surrogate calibrated to the
//! published numbers (standard ResNet-50 ≈ 76.3 % top-1 on ImageNet, the
//! space's ceiling just under 80 %). NAAS only consumes accuracy as a
//! scalar constraint/reward, and the surrogate is monotone in the same
//! knobs with the same dynamic range, so the accuracy-vs-EDP trade-off
//! mechanics are exercised identically.
//!
//! ```
//! use naas_nas::{AccuracyModel, ResNet50Space, Subnet};
//!
//! let space = ResNet50Space::paper();
//! let base = Subnet::resnet50_baseline();
//! let acc = AccuracyModel::default().predict(&base);
//! assert!((acc - 76.3).abs() < 0.1);
//! assert!(space.contains(&base));
//! ```

pub mod accuracy;
pub mod search;
pub mod space;

pub use accuracy::AccuracyModel;
pub use search::{NasConfig, NasOutcome, SubnetSearchDriver};
pub use space::{ResNet50Space, Subnet};
