//! Gaussian sampling via Box–Muller (kept in-repo to avoid a `rand_distr`
//! dependency; see DESIGN.md §3).

use rand::RngExt;

/// Draws one standard-normal sample.
///
/// Box–Muller transform over two uniform draws; numerically safe because
/// the first draw is bounded away from zero.
pub fn standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills a vector with standard-normal samples.
pub fn standard_normal_vec<R: RngExt + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let samples = standard_normal_vec(&mut rng, n);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = standard_normal_vec(&mut SmallRng::seed_from_u64(1), 8);
        let b = standard_normal_vec(&mut SmallRng::seed_from_u64(1), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn all_finite() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
