//! Design-space cardinality accounting — reproduces the size claims of
//! the paper's §I: "within the same #PEs and on-chip memory resources as
//! EdgeTPU there are at least 10¹¹ hardware candidates and 10¹⁷ mapping
//! candidates for each layer, which composes 10⁸⁶¹ possible combinations
//! in the joint search space for ResNet-50."
//!
//! All counts are returned as log₁₀ (the joint space overflows any
//! integer type by hundreds of orders of magnitude).

use naas_accel::ResourceConstraint;
use naas_ir::{ConvSpec, Network, DIMS};
use naas_mapping::order::{num_parallel_choices, NUM_ORDERS};

/// log₁₀ of the number of hardware candidates inside an envelope, using
/// the paper's strides (#PEs stride 8, buffers stride 16 B, array dims
/// stride 2, and the 1D/2D/3D × parallel-dimension connectivity choices).
pub fn log10_hardware_candidates(constraint: &ResourceConstraint) -> f64 {
    let pe_choices = (constraint.max_pes() / 8).max(1) as f64;
    // L1/L2 split: count (L1, L2) pairs at 16-B stride that fit on chip;
    // approximate the triangular region by half the full grid.
    let onchip_steps = (constraint.max_onchip_bytes() / 16).max(1) as f64;
    // L1 per PE is bounded by onchip/2/PEs; L2 takes the rest. The pair
    // count is ≈ (l1 steps) × (l2 steps) ≈ onchip_steps²/(2·PEs·16…); we
    // conservatively count the L2 dimension fully and L1 at its cap.
    let l1_steps =
        (constraint.max_onchip_bytes() / 2 / constraint.max_pes().max(1) / 16).max(1) as f64;
    let bw_choices = constraint.noc_bandwidth().max(1.0);
    let mut connectivity = 0.0;
    for ndim in 1..=3usize {
        // Each array dim sized at stride 2 up to #PEs^(1/ndim)-ish; count
        // factorizations loosely as (pe_choices)^(ndim-1) shape splits.
        let shapes = pe_choices.powf((ndim as f64 - 1.0).max(0.0) / 2.0).max(1.0);
        connectivity += shapes * num_parallel_choices(ndim) as f64;
    }
    (pe_choices * l1_steps * onchip_steps * bw_choices * connectivity).log10()
}

/// log₁₀ of the number of mapping candidates for one layer on a k-D
/// array: per array level, a loop order (6! choices) and a tiling (each
/// dimension splittable into 1..=extent tiles); plus the PE-level order.
pub fn log10_mapping_candidates(layer: &ConvSpec, ndim: usize) -> f64 {
    let order_log = (NUM_ORDERS as f64).log10();
    let tiling_log: f64 = DIMS.iter().map(|&d| (layer.extent(d) as f64).log10()).sum();
    // k array levels with order+tiling, one PE level with order only.
    ndim as f64 * (order_log + tiling_log) + order_log
}

/// log₁₀ of the joint (hardware × per-layer mapping) space for a whole
/// network: hardware choices once, mapping choices per layer (§I counts
/// 10^(11 + 50·17) = 10⁸⁶¹ for ResNet-50 under EdgeTPU resources).
pub fn log10_joint_space(constraint: &ResourceConstraint, network: &Network, ndim: usize) -> f64 {
    log10_hardware_candidates(constraint)
        + network
            .iter()
            .map(|l| log10_mapping_candidates(l, ndim))
            .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    #[test]
    fn edge_tpu_hardware_space_is_at_least_1e11() {
        let c = ResourceConstraint::from_design(&baselines::edge_tpu());
        let log = log10_hardware_candidates(&c);
        assert!(log >= 11.0, "paper claims ≥10^11, got 10^{log:.1}");
        assert!(log <= 20.0, "sanity ceiling, got 10^{log:.1}");
    }

    #[test]
    fn per_layer_mapping_space_is_astronomical() {
        // The paper quotes ~10^17 mapping candidates per layer.
        let net = models::resnet50(224);
        let mid = net.iter().find(|l| l.name() == "s2b1_conv3").unwrap();
        let log = log10_mapping_candidates(mid, 2);
        assert!(log >= 14.0, "got 10^{log:.1}");
    }

    #[test]
    fn joint_space_for_resnet50_is_hundreds_of_orders() {
        let c = ResourceConstraint::from_design(&baselines::edge_tpu());
        let net = models::resnet50(224);
        let log = log10_joint_space(&c, &net, 2);
        // Paper: 10^861. Ours counts the same structure: several hundred
        // orders of magnitude.
        assert!(log > 400.0, "got 10^{log:.0}");
        assert!(log.is_finite());
    }

    #[test]
    fn bigger_envelopes_have_bigger_spaces() {
        let small =
            log10_hardware_candidates(&ResourceConstraint::from_design(&baselines::shidiannao()));
        let big =
            log10_hardware_candidates(&ResourceConstraint::from_design(&baselines::edge_tpu()));
        assert!(big > small);
    }
}
