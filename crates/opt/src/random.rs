//! Uniform random search — the baseline NAAS is compared against in
//! Fig. 4.

use crate::Optimizer;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Uniform sampler over `[0, 1]^dim` with the same ask/tell interface as
/// [`crate::CemEs`]; `tell` is a no-op (no learning). Serializable for
/// checkpoint/resume, like [`crate::CemEs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomSearch {
    dim: usize,
    rng: SmallRng,
}

impl RandomSearch {
    /// Creates a uniform sampler.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "search space must have at least one knob");
        RandomSearch {
            dim,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Optimizer for RandomSearch {
    fn ask_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        for _ in 0..self.dim {
            out.push(self.rng.random_range(0.0..=1.0));
        }
    }

    fn tell(&mut self, _scored: &[(Vec<f64>, f64)]) {}

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cover_unit_box() {
        let mut rs = RandomSearch::new(3, 11);
        let mut lo = [1.0f64; 3];
        let mut hi = [0.0f64; 3];
        for _ in 0..2000 {
            let x = rs.ask();
            for i in 0..3 {
                lo[i] = lo[i].min(x[i]);
                hi[i] = hi[i].max(x[i]);
            }
        }
        assert!(lo.iter().all(|&v| v < 0.05));
        assert!(hi.iter().all(|&v| v > 0.95));
    }

    #[test]
    fn tell_does_not_change_distribution() {
        let mut a = RandomSearch::new(2, 5);
        let mut b = RandomSearch::new(2, 5);
        b.tell(&[(vec![0.0, 0.0], 0.0)]);
        assert_eq!(a.ask(), b.ask());
    }
}
