//! The full NAAS hardware encoding (paper Fig. 2): architectural sizing
//! plus connectivity parameters.

use crate::encoding::{lerp, round_stride, unit_to_index, EncodingScheme};
use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity, ResourceConstraint};
use naas_mapping::order::{num_parallel_choices, parallel_choice_index, parallel_dims_from_index};
use naas_mapping::parallel_dims_from_importance;

/// Decoder from an optimizer vector to an [`Accelerator`] within a
/// [`ResourceConstraint`].
///
/// Vector layout (importance scheme, 13 knobs):
///
/// | index | knob | decode |
/// |---|---|---|
/// | 0 | #PEs | stride-8 fraction of the envelope's PE budget |
/// | 1 | L1 size | stride-16 B split of the on-chip SRAM budget |
/// | 2 | L2 size | stride-16 B share of the remaining SRAM |
/// | 3 | NoC bandwidth | fraction of the envelope ceiling |
/// | 4 | #array dims | 1, 2 or 3 |
/// | 5-6 | array dim sizes | stride-2 geometric splits of the PE budget |
/// | 7-12 | parallel dims | six importance values, top-k win (Fig. 3) |
///
/// With [`EncodingScheme::Index`] the six importances collapse into a
/// single enumeration index (8 knobs total) — the Fig. 9 baseline.
///
/// ```
/// use naas_accel::{baselines, ResourceConstraint};
/// use naas_opt::{EncodingScheme, HardwareEncoder};
///
/// let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
/// let enc = HardwareEncoder::new(envelope.clone(), EncodingScheme::Importance);
/// let design = enc.decode(&vec![0.5; enc.dim()]).expect("midpoint decodes");
/// assert!(envelope.admits(&design).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct HardwareEncoder {
    constraint: ResourceConstraint,
    scheme: EncodingScheme,
}

impl HardwareEncoder {
    /// Creates a decoder for the given resource envelope.
    pub fn new(constraint: ResourceConstraint, scheme: EncodingScheme) -> Self {
        HardwareEncoder { constraint, scheme }
    }

    /// The resource envelope this encoder targets.
    pub fn constraint(&self) -> &ResourceConstraint {
        &self.constraint
    }

    /// The encoding scheme in use.
    pub fn scheme(&self) -> EncodingScheme {
        self.scheme
    }

    /// Number of knobs in the vector.
    pub fn dim(&self) -> usize {
        match self.scheme {
            EncodingScheme::Importance => 13,
            EncodingScheme::Index => 8,
        }
    }

    /// Decodes a vector into a design point, or `None` for invalid
    /// samples (callers resample, per §II-A0c).
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.dim()`.
    pub fn decode(&self, theta: &[f64]) -> Option<Accelerator> {
        assert_eq!(theta.len(), self.dim(), "wrong hardware vector length");
        let c = &self.constraint;

        // Connectivity: dimensionality, sizes, parallel dims.
        let ndim = 1 + unit_to_index(theta[4], 3) as usize;
        let pe_budget = round_stride(
            lerp(
                (c.max_pes() as f64 / 8.0).max(8.0),
                c.max_pes() as f64,
                theta[0],
            ),
            8,
        )
        .min(c.max_pes());
        let sizes = split_array(pe_budget, ndim, theta[5], theta[6])?;
        let pe_count: u64 = sizes.iter().product();
        if pe_count > c.max_pes() {
            return None;
        }

        let parallel = match self.scheme {
            EncodingScheme::Importance => {
                let imp: [f64; 6] = theta[7..13].try_into().expect("six importances");
                parallel_dims_from_importance(&imp, ndim)
            }
            EncodingScheme::Index => {
                let total = num_parallel_choices(ndim);
                parallel_dims_from_index(unit_to_index(theta[7], total), ndim)
            }
        };
        let connectivity = Connectivity::new(sizes, parallel).ok()?;

        // Sizing: split the on-chip budget between Σ L1 and L2
        // (buffer strides of 16 B, §III-A0a).
        let onchip = c.max_onchip_bytes();
        // Caps floored to the 16-B stride so the final min() stays on it.
        let l1_cap = ((((onchip / 2) / pe_count).max(16)) / 16) * 16;
        let l1 = round_stride(lerp(16.0, l1_cap as f64, theta[1]), 16).min(l1_cap);
        let remaining = ((onchip.saturating_sub(pe_count * l1)) / 16) * 16;
        if remaining < 16 {
            return None;
        }
        let l2 = round_stride(
            lerp((remaining / 8).max(16) as f64, remaining as f64, theta[2]),
            16,
        )
        .min(remaining);
        let noc = lerp(c.noc_bandwidth() / 4.0, c.noc_bandwidth(), theta[3]);

        let design = Accelerator::new(
            format!("naas_{}x{}", pe_count, connectivity.size_label()),
            ArchitecturalSizing::new(l1, l2, noc, c.dram_bandwidth()),
            connectivity,
        );
        c.admits(&design).ok()?;
        Some(design)
    }

    /// Approximately inverts [`HardwareEncoder::decode`]: produces a
    /// vector that decodes to (a stride-rounded neighbour of) `design`.
    ///
    /// Used to warm-start the outer evolution with an incumbent design —
    /// the search should never lose to the envelope's source baseline,
    /// since that baseline is itself a member of the space.
    ///
    /// Returns `None` when the design cannot be expressed (e.g. it
    /// violates the envelope, or has more than 3 array dims).
    pub fn encode(&self, design: &Accelerator) -> Option<Vec<f64>> {
        let c = &self.constraint;
        c.admits(design).ok()?;
        let conn = design.connectivity();
        let ndim = conn.ndim();
        let mut theta = vec![0.5; self.dim()];

        // PE budget knob.
        let lo = (c.max_pes() as f64 / 8.0).max(8.0);
        let pe = design.pe_count() as f64;
        theta[0] = ((pe - lo) / (c.max_pes() as f64 - lo).max(1e-12)).clamp(0.0, 1.0);
        let budget = round_stride(lerp(lo, c.max_pes() as f64, theta[0]), 8).min(c.max_pes());

        // Array rank: the centre of the rank's decode bin.
        theta[4] = (ndim as f64 - 1.0) / 3.0 + 1.0 / 6.0;

        // Dim-size split exponents (inverse of `split_array`).
        let b = (budget as f64).max(2.0);
        match ndim {
            1 => {}
            2 => {
                let alpha = (conn.sizes()[0] as f64).ln() / b.ln();
                theta[5] = ((alpha - 0.2) / 0.6).clamp(0.0, 1.0);
            }
            3 => {
                let a = conn.sizes()[0] as f64;
                let alpha = a.ln() / b.ln();
                theta[5] = ((alpha - 0.15) / 0.35).clamp(0.0, 1.0);
                let rem = (budget / conn.sizes()[0]).max(2) as f64;
                let beta = (conn.sizes()[1] as f64).ln() / rem.ln();
                theta[6] = ((beta - 0.25) / 0.5).clamp(0.0, 1.0);
            }
            _ => return None,
        }

        // Parallel dimensions.
        match self.scheme {
            EncodingScheme::Importance => {
                for slot in theta[7..13].iter_mut() {
                    *slot = 0.2;
                }
                for (i, d) in conn.parallel_dims().iter().enumerate() {
                    theta[7 + d.index()] = 0.9 - 0.1 * i as f64;
                }
            }
            EncodingScheme::Index => {
                let total = num_parallel_choices(ndim);
                let idx = parallel_choice_index(conn.parallel_dims());
                theta[7] = (idx as f64 + 0.5) / total as f64;
            }
        }

        // Sizing knobs, inverted against the *decoded* PE count so the
        // stride rounding of the split stays consistent.
        let decoded_pe = self.decode(&theta)?.pe_count();
        let onchip = c.max_onchip_bytes();
        let l1_cap = (((((onchip / 2) / decoded_pe).max(16)) / 16) * 16) as f64;
        theta[1] = ((design.sizing().l1_bytes() as f64 - 16.0) / (l1_cap - 16.0).max(1e-12))
            .clamp(0.0, 1.0);
        let l1 = round_stride(lerp(16.0, l1_cap, theta[1]), 16).min(l1_cap as u64);
        let remaining = (onchip.saturating_sub(decoded_pe * l1) / 16 * 16) as f64;
        let l2_lo = (remaining / 8.0).max(16.0);
        theta[2] = ((design.sizing().l2_bytes() as f64 - l2_lo) / (remaining - l2_lo).max(1e-12))
            .clamp(0.0, 1.0);
        let bw_lo = c.noc_bandwidth() / 4.0;
        theta[3] = ((design.sizing().noc_bandwidth() - bw_lo)
            / (c.noc_bandwidth() - bw_lo).max(1e-12))
        .clamp(0.0, 1.0);

        // Final verification: the vector must decode to a valid design.
        self.decode(&theta)?;
        Some(theta)
    }
}

/// Splits a PE budget into `ndim` stride-2 array-dimension sizes whose
/// product does not exceed the budget.
fn split_array(budget: u64, ndim: usize, t0: f64, t1: f64) -> Option<Vec<u64>> {
    let b = budget as f64;
    match ndim {
        1 => {
            let s = round_stride(b, 2).min(budget & !1);
            (s >= 2).then(|| vec![s.max(2)])
        }
        2 => {
            if budget < 4 {
                return None;
            }
            let rows =
                round_stride(b.powf(lerp(0.2, 0.8, t0)), 2).clamp(2, ((budget / 2) & !1).max(2));
            let cols = ((budget / rows) & !1).max(2);
            Some(vec![rows, cols])
        }
        3 => {
            if budget < 8 {
                return None;
            }
            let a =
                round_stride(b.powf(lerp(0.15, 0.5, t0)), 2).clamp(2, ((budget / 4) & !1).max(2));
            let rem = budget / a;
            if rem < 4 {
                return None;
            }
            let bb = round_stride((rem as f64).powf(lerp(0.25, 0.75, t1)), 2)
                .clamp(2, ((rem / 2) & !1).max(2));
            let cc = ((rem / bb) & !1).max(2);
            Some(vec![a, bb, cc])
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn envelope() -> ResourceConstraint {
        ResourceConstraint::from_design(&baselines::eyeriss())
    }

    #[test]
    fn midpoint_decodes_for_all_baselines() {
        for design in baselines::all() {
            let c = ResourceConstraint::from_design(&design);
            for scheme in [EncodingScheme::Importance, EncodingScheme::Index] {
                let enc = HardwareEncoder::new(c.clone(), scheme);
                let d = enc.decode(&vec![0.5; enc.dim()]);
                assert!(d.is_some(), "midpoint must decode under {}", design.name());
            }
        }
    }

    #[test]
    fn decoded_designs_always_fit_envelope() {
        let enc = HardwareEncoder::new(envelope(), EncodingScheme::Importance);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut valid = 0;
        for _ in 0..500 {
            let theta: Vec<f64> = (0..enc.dim())
                .map(|_| rng.random_range(0.0..=1.0))
                .collect();
            if let Some(d) = enc.decode(&theta) {
                valid += 1;
                assert!(
                    envelope().admits(&d).is_ok(),
                    "decoded design must fit: {d}"
                );
                assert!(d.connectivity().ndim() >= 1 && d.connectivity().ndim() <= 3);
                for &s in d.connectivity().sizes() {
                    assert_eq!(s % 2, 0, "array sizes use stride 2");
                }
                assert_eq!(d.sizing().l1_bytes() % 16, 0, "L1 uses stride 16");
            }
        }
        assert!(valid > 400, "decode success rate too low: {valid}/500");
    }

    #[test]
    fn ndim_knob_selects_rank() {
        let enc = HardwareEncoder::new(
            ResourceConstraint::from_design(&baselines::edge_tpu()),
            EncodingScheme::Importance,
        );
        let mut theta = vec![0.5; enc.dim()];
        theta[4] = 0.0;
        assert_eq!(enc.decode(&theta).unwrap().connectivity().ndim(), 1);
        theta[4] = 0.5;
        assert_eq!(enc.decode(&theta).unwrap().connectivity().ndim(), 2);
        theta[4] = 1.0;
        assert_eq!(enc.decode(&theta).unwrap().connectivity().ndim(), 3);
    }

    #[test]
    fn importance_knobs_select_parallel_dims() {
        let enc = HardwareEncoder::new(envelope(), EncodingScheme::Importance);
        let mut theta = vec![0.5; enc.dim()];
        theta[4] = 0.5; // 2D
                        // K and X most important.
        theta[7..13].copy_from_slice(&[0.9, 0.1, 0.2, 0.8, 0.1, 0.1]);
        let d = enc.decode(&theta).unwrap();
        assert_eq!(d.connectivity().dataflow_label(), "K-X' Parallel");
    }

    #[test]
    fn pe_knob_scales_array() {
        let enc = HardwareEncoder::new(
            ResourceConstraint::from_design(&baselines::nvdla_1024()),
            EncodingScheme::Importance,
        );
        let mut lo = vec![0.5; enc.dim()];
        lo[0] = 0.0;
        let mut hi = lo.clone();
        hi[0] = 1.0;
        let small = enc.decode(&lo).unwrap().pe_count();
        let big = enc.decode(&hi).unwrap().pe_count();
        assert!(
            big > small,
            "PE knob must scale the array: {small} vs {big}"
        );
        assert!(big <= 1024);
    }

    #[test]
    fn index_scheme_has_smaller_vector() {
        let imp = HardwareEncoder::new(envelope(), EncodingScheme::Importance);
        let idx = HardwareEncoder::new(envelope(), EncodingScheme::Index);
        assert!(idx.dim() < imp.dim());
    }

    #[test]
    fn encode_round_trips_all_baselines() {
        for design in baselines::all() {
            let c = ResourceConstraint::from_design(&design);
            for scheme in [EncodingScheme::Importance, EncodingScheme::Index] {
                let enc = HardwareEncoder::new(c.clone(), scheme);
                let theta = enc
                    .encode(&design)
                    .unwrap_or_else(|| panic!("{} must encode", design.name()));
                let back = enc.decode(&theta).expect("encoded vector decodes");
                assert_eq!(back.pe_count(), design.pe_count(), "{}", design.name());
                assert_eq!(
                    back.connectivity().dataflow_label(),
                    design.connectivity().dataflow_label(),
                    "{}",
                    design.name()
                );
                assert_eq!(
                    back.connectivity().sizes(),
                    design.connectivity().sizes(),
                    "{}",
                    design.name()
                );
                assert_eq!(
                    back.sizing().l1_bytes(),
                    design.sizing().l1_bytes(),
                    "{}",
                    design.name()
                );
                assert_eq!(
                    back.sizing().l2_bytes(),
                    design.sizing().l2_bytes(),
                    "{}",
                    design.name()
                );
            }
        }
    }

    #[test]
    fn encode_rejects_designs_outside_envelope() {
        let enc = HardwareEncoder::new(
            ResourceConstraint::from_design(&baselines::shidiannao()),
            EncodingScheme::Importance,
        );
        assert!(enc.encode(&baselines::edge_tpu()).is_none());
    }
}
