//! The sizing-only encoding of prior work (NASAIC [11], NHAS [12]) —
//! the baseline NAAS outperforms in Fig. 8.
//!
//! Prior frameworks "formulate the hardware parameter search as a pure
//! sizing optimization": the PE-array dataflow (connectivity) stays fixed
//! to the source design and only numerical knobs move. This encoder
//! reproduces that space: a PE-budget scale applied *uniformly* to the
//! baseline's array shape (aspect ratio and parallel dims preserved) plus
//! L1/L2/bandwidth splits.

use crate::encoding::{lerp, round_stride};
use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity, ResourceConstraint};

/// Decoder from a 4-knob vector to a sizing-only variant of a baseline
/// design: `[pe_scale, l1_split, l2_split, bandwidth]`.
///
/// ```
/// use naas_accel::{baselines, ResourceConstraint};
/// use naas_opt::SizingOnlyEncoder;
///
/// let base = baselines::eyeriss();
/// let envelope = ResourceConstraint::from_design(&base);
/// let enc = SizingOnlyEncoder::new(base.clone(), envelope.clone());
/// let d = enc.decode(&[0.5; 4]).expect("midpoint decodes");
/// // Connectivity class is inherited from the baseline:
/// assert_eq!(
///     d.connectivity().dataflow_label(),
///     base.connectivity().dataflow_label()
/// );
/// assert!(envelope.admits(&d).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SizingOnlyEncoder {
    baseline: Accelerator,
    constraint: ResourceConstraint,
}

impl SizingOnlyEncoder {
    /// Creates a sizing-only decoder anchored at `baseline` inside
    /// `constraint`.
    pub fn new(baseline: Accelerator, constraint: ResourceConstraint) -> Self {
        SizingOnlyEncoder {
            baseline,
            constraint,
        }
    }

    /// Number of knobs (always 4).
    pub fn dim(&self) -> usize {
        4
    }

    /// Decodes `[pe_scale, l1_split, l2_split, bandwidth]` into a design,
    /// or `None` for degenerate scales.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != 4`.
    pub fn decode(&self, theta: &[f64]) -> Option<Accelerator> {
        assert_eq!(theta.len(), 4, "sizing-only vector has 4 knobs");
        let c = &self.constraint;
        let base_conn = self.baseline.connectivity();

        // Scale every array dimension by a common factor ∈ [0.5, 1]·max.
        let base_pes = base_conn.pe_count() as f64;
        let target = lerp(base_pes / 4.0, c.max_pes() as f64, theta[0]);
        let factor = (target / base_pes).powf(1.0 / base_conn.ndim() as f64);
        let sizes: Vec<u64> = base_conn
            .sizes()
            .iter()
            .map(|&s| round_stride(s as f64 * factor, 2).max(2))
            .collect();
        let connectivity = Connectivity::new(sizes, base_conn.parallel_dims().to_vec()).ok()?;
        let pe_count = connectivity.pe_count();
        if pe_count > c.max_pes() {
            return None;
        }

        let onchip = c.max_onchip_bytes();
        // Caps floored to the 16-B stride so the final min() stays on it.
        let l1_cap = ((((onchip / 2) / pe_count).max(16)) / 16) * 16;
        let l1 = round_stride(lerp(16.0, l1_cap as f64, theta[1]), 16).min(l1_cap);
        let remaining = ((onchip.saturating_sub(pe_count * l1)) / 16) * 16;
        if remaining < 16 {
            return None;
        }
        let l2 = round_stride(
            lerp((remaining / 8).max(16) as f64, remaining as f64, theta[2]),
            16,
        )
        .min(remaining);
        let noc = lerp(c.noc_bandwidth() / 4.0, c.noc_bandwidth(), theta[3]);

        let design = Accelerator::new(
            format!("sizing_{}_{}", self.baseline.name(), pe_count),
            ArchitecturalSizing::new(l1, l2, noc, c.dram_bandwidth()),
            connectivity,
        );
        c.admits(&design).ok()?;
        Some(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn connectivity_class_is_preserved() {
        let base = baselines::nvdla_256();
        let enc = SizingOnlyEncoder::new(base.clone(), ResourceConstraint::from_design(&base));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let theta: [f64; 4] = std::array::from_fn(|_| rng.random_range(0.0..=1.0));
            if let Some(d) = enc.decode(&theta) {
                assert_eq!(d.connectivity().ndim(), 2);
                assert_eq!(
                    d.connectivity().dataflow_label(),
                    base.connectivity().dataflow_label()
                );
            }
        }
    }

    #[test]
    fn decodes_fit_envelope() {
        for base in baselines::all() {
            let c = ResourceConstraint::from_design(&base);
            let enc = SizingOnlyEncoder::new(base, c.clone());
            let mut rng = SmallRng::seed_from_u64(7);
            let mut ok = 0;
            for _ in 0..200 {
                let theta: [f64; 4] = std::array::from_fn(|_| rng.random_range(0.0..=1.0));
                if let Some(d) = enc.decode(&theta) {
                    ok += 1;
                    assert!(c.admits(&d).is_ok());
                }
            }
            assert!(ok > 150, "sizing decodes should mostly succeed: {ok}");
        }
    }

    #[test]
    fn pe_scale_moves_array_size() {
        let base = baselines::nvdla_1024();
        let enc = SizingOnlyEncoder::new(
            base,
            ResourceConstraint::from_design(&baselines::nvdla_1024()),
        );
        let small = enc.decode(&[0.0, 0.5, 0.5, 0.5]).unwrap();
        let big = enc.decode(&[1.0, 0.5, 0.5, 0.5]).unwrap();
        assert!(small.pe_count() < big.pe_count());
    }
}
