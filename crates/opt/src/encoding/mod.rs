//! Decoders from optimizer vectors in `[0, 1]^|θ|` to typed design points.
//!
//! NAAS's key encoding insight (paper §II-A0b, Fig. 3): non-numerical
//! choices — which dimensions to parallelize, in what order to nest loops
//! — are encoded as *importance values*, one per dimension, and decoded by
//! sorting. Unlike enumeration indices, importance values carry physical
//! meaning (priority of parallelism / data locality), so the evolution
//! strategy's arithmetic on them is meaningful. The index-based baseline
//! ([`EncodingScheme::Index`]) is implemented for the Fig. 9 ablation.
//!
//! Three decoders cover the paper's search spaces:
//!
//! * [`HardwareEncoder`] — the full NAAS hardware vector (Fig. 2):
//!   architectural sizing + connectivity;
//! * [`MappingEncoder`] — per-layer mapping vectors: loop order +
//!   tiling ratio per array level plus the PE-level order;
//! * [`SizingOnlyEncoder`] — prior work's space (NASAIC/NHAS): numerical
//!   sizing only, connectivity and mapping frozen (Fig. 8 ablation).
//!
//! Decoders return `Option`: `None` marks an invalid sample, which the
//! caller resamples "until the candidate set reaches a predefined size"
//! (§II-A0c).

mod hardware;
mod mapping_enc;
mod sizing;

pub use hardware::HardwareEncoder;
pub use mapping_enc::MappingEncoder;
pub use sizing::SizingOnlyEncoder;

use serde::{Deserialize, Serialize};

/// How non-numerical choices (loop orders, parallel dims) are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncodingScheme {
    /// One importance value per dimension; decode by sorting
    /// (the paper's contribution).
    Importance,
    /// A single enumeration index scaled into `[0, 1]`
    /// (the ablation baseline).
    Index,
}

/// Linear interpolation `lo + t (hi − lo)` with `t` clamped to `[0, 1]`.
pub(crate) fn lerp(lo: f64, hi: f64, t: f64) -> f64 {
    lo + (hi - lo) * t.clamp(0.0, 1.0)
}

/// Rounds to the nearest positive multiple of `stride`
/// (paper §III-A0a: #PEs stride 8, buffers stride 16 B, array dims
/// stride 2).
pub(crate) fn round_stride(value: f64, stride: u64) -> u64 {
    let s = stride as f64;
    (((value / s).round() * s) as u64).max(stride)
}

/// Scales a unit value to an integer choice in `0..n`.
pub(crate) fn unit_to_index(value: f64, n: u64) -> u64 {
    ((value.clamp(0.0, 1.0) * n as f64) as u64).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_clamp() {
        assert_eq!(lerp(2.0, 10.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(2.0, 10.0, -1.0), 2.0);
        assert_eq!(lerp(2.0, 10.0, 2.0), 10.0);
    }

    #[test]
    fn round_stride_basics() {
        assert_eq!(round_stride(23.0, 8), 24);
        assert_eq!(round_stride(3.0, 8), 8);
        assert_eq!(round_stride(16.0, 16), 16);
        assert_eq!(round_stride(0.0, 2), 2);
    }

    #[test]
    fn unit_to_index_covers_range() {
        assert_eq!(unit_to_index(0.0, 720), 0);
        assert_eq!(unit_to_index(1.0, 720), 719);
        assert_eq!(unit_to_index(0.5, 6), 3);
    }
}
