//! The per-layer mapping encoding (paper Fig. 2 bottom, Fig. 3 right).

use crate::encoding::{unit_to_index, EncodingScheme};
use naas_accel::Connectivity;
use naas_ir::{ConvSpec, Dim, DimVec, DIMS};
use naas_mapping::order::{perm_from_lehmer, NUM_ORDERS};
use naas_mapping::tiling::{ceil_div, trips_from_ratio};
use naas_mapping::{order_from_importance, LevelSpec, Mapping};

/// Decoder from an optimizer vector to a [`Mapping`] for one layer on one
/// connectivity.
///
/// Importance scheme — per array level: 6 loop-order importances + 6
/// tiling ratios; plus 6 PE-level order importances
/// (`12·k + 6` knobs for a k-D array).
///
/// Index scheme — per array level: 1 Lehmer order index + 6 tiling
/// ratios; plus 1 PE-level order index (`7·k + 1` knobs).
///
/// Tiling ratios decode against the *remaining* extent at each level
/// (paper §II-B: ratios, not absolute sizes, so vectors adapt across
/// layers), walking temporal tiling and spatial splits exactly like the
/// cost model.
///
/// ```
/// use naas_accel::baselines;
/// use naas_ir::ConvSpec;
/// use naas_opt::{EncodingScheme, MappingEncoder};
///
/// let accel = baselines::nvdla_256();
/// let enc = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
/// let layer = ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1)?;
/// let mapping = enc.decode(&vec![0.5; enc.dim()], &layer, accel.connectivity());
/// mapping.validate(&accel).expect("structurally valid");
/// # Ok::<(), naas_ir::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MappingEncoder {
    ndim: usize,
    scheme: EncodingScheme,
}

impl MappingEncoder {
    /// Creates a decoder for a `ndim`-level array.
    ///
    /// # Panics
    ///
    /// Panics unless `ndim` ∈ 1..=3.
    pub fn new(ndim: usize, scheme: EncodingScheme) -> Self {
        assert!((1..=3).contains(&ndim), "array rank must be 1..=3");
        MappingEncoder { ndim, scheme }
    }

    /// The encoding scheme in use.
    pub fn scheme(&self) -> EncodingScheme {
        self.scheme
    }

    /// Number of knobs in the vector.
    pub fn dim(&self) -> usize {
        match self.scheme {
            EncodingScheme::Importance => 12 * self.ndim + 6,
            EncodingScheme::Index => 7 * self.ndim + 1,
        }
    }

    /// Decodes a vector into a mapping. Mapping decodes are total: every
    /// vector yields a structurally valid mapping (capacity validity is
    /// the cost model's verdict).
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.dim()` or if `conn.ndim()` differs
    /// from the encoder's rank.
    pub fn decode(&self, theta: &[f64], layer: &ConvSpec, conn: &Connectivity) -> Mapping {
        let mut out = Mapping::new(Vec::with_capacity(self.ndim), DIMS);
        self.decode_into(theta, layer, conn, &mut out);
        out
    }

    /// [`MappingEncoder::decode`] into a caller-owned mapping, reusing its
    /// level allocation — the batched pipeline decodes a whole population
    /// into recycled `Mapping` slots without touching the allocator.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MappingEncoder::decode`].
    pub fn decode_into(
        &self,
        theta: &[f64],
        layer: &ConvSpec,
        conn: &Connectivity,
        out: &mut Mapping,
    ) {
        assert_eq!(theta.len(), self.dim(), "wrong mapping vector length");
        assert_eq!(conn.ndim(), self.ndim, "connectivity rank mismatch");

        let mut rem: DimVec<u64> = layer.extents();
        out.clear_levels();
        for level in 0..self.ndim {
            let (order, ratios) = match self.scheme {
                EncodingScheme::Importance => {
                    let base = level * 12;
                    let imp: [f64; 6] = theta[base..base + 6].try_into().expect("six values");
                    let ratios: [f64; 6] =
                        theta[base + 6..base + 12].try_into().expect("six values");
                    (order_from_importance(&imp), ratios)
                }
                EncodingScheme::Index => {
                    let base = level * 7;
                    let order = perm_from_lehmer(unit_to_index(theta[base], NUM_ORDERS));
                    let ratios: [f64; 6] =
                        theta[base + 1..base + 7].try_into().expect("six values");
                    (order, ratios)
                }
            };
            let trips = DimVec::from_fn(|d| trips_from_ratio(rem[d], ratios[d.index()]));
            // Walk the hierarchy exactly like Mapping::tiles_per_level.
            rem = DimVec::from_fn(|d| ceil_div(rem[d], trips[d]));
            let p = conn.parallel_dims()[level];
            rem[p] = ceil_div(rem[p], conn.sizes()[level]);
            out.push_level(LevelSpec { order, trips });
        }

        let pe_order: [Dim; 6] = match self.scheme {
            EncodingScheme::Importance => {
                let base = 12 * self.ndim;
                let imp: [f64; 6] = theta[base..base + 6].try_into().expect("six values");
                order_from_importance(&imp)
            }
            EncodingScheme::Index => {
                perm_from_lehmer(unit_to_index(theta[7 * self.ndim], NUM_ORDERS))
            }
        };
        out.set_pe_order(pe_order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
    }

    #[test]
    fn every_vector_is_structurally_valid() {
        let mut rng = SmallRng::seed_from_u64(23);
        for accel in baselines::all() {
            for scheme in [EncodingScheme::Importance, EncodingScheme::Index] {
                let enc = MappingEncoder::new(accel.connectivity().ndim(), scheme);
                for _ in 0..50 {
                    let theta: Vec<f64> = (0..enc.dim())
                        .map(|_| rng.random_range(0.0..=1.0))
                        .collect();
                    let m = enc.decode(&theta, &layer(), accel.connectivity());
                    m.validate(&accel).expect("decode is total");
                }
            }
        }
    }

    #[test]
    fn zero_ratio_means_no_tiling() {
        let accel = baselines::nvdla_256();
        let enc = MappingEncoder::new(2, EncodingScheme::Importance);
        let mut theta = vec![0.5; enc.dim()];
        for level in 0..2 {
            for i in 0..6 {
                theta[level * 12 + 6 + i] = 0.0;
            }
        }
        let m = enc.decode(&theta, &layer(), accel.connectivity());
        for l in m.levels() {
            assert!(l.trips.iter().all(|(_, t)| t == 1));
        }
    }

    #[test]
    fn full_ratio_tiles_to_single_elements() {
        let accel = baselines::nvdla_256();
        let enc = MappingEncoder::new(2, EncodingScheme::Importance);
        let mut theta = vec![0.5; enc.dim()];
        for i in 0..6 {
            theta[6 + i] = 1.0; // level-0 ratios max out
        }
        let m = enc.decode(&theta, &layer(), accel.connectivity());
        let l = layer();
        for (d, t) in m.levels()[0].trips.iter() {
            assert_eq!(t, l.extent(d), "full ratio fully tiles {d}");
        }
    }

    #[test]
    fn importance_controls_order() {
        let accel = baselines::nvdla_256();
        let enc = MappingEncoder::new(2, EncodingScheme::Importance);
        let mut theta = vec![0.5; enc.dim()];
        theta[0..6].copy_from_slice(&[0.1, 0.9, 0.2, 0.3, 0.4, 0.5]); // C first
        let m = enc.decode(&theta, &layer(), accel.connectivity());
        assert_eq!(m.levels()[0].order[0], Dim::C);
        assert_eq!(m.levels()[0].order[5], Dim::K);
    }

    #[test]
    fn index_scheme_round_trips_orders() {
        let accel = baselines::nvdla_256();
        let enc = MappingEncoder::new(2, EncodingScheme::Index);
        let mut theta = vec![0.0; enc.dim()];
        theta[0] = 0.0; // Lehmer 0 = canonical order
        let m = enc.decode(&theta, &layer(), accel.connectivity());
        assert_eq!(m.levels()[0].order, DIMS);
    }

    #[test]
    fn ratios_adapt_to_layer_extent() {
        // The same vector decodes sensibly for a tiny layer: trips never
        // exceed extents.
        let tiny = ConvSpec::conv2d("t", 3, 8, (8, 8), (3, 3), 1, 1).unwrap();
        let accel = baselines::nvdla_256();
        let enc = MappingEncoder::new(2, EncodingScheme::Importance);
        let theta = vec![0.9; enc.dim()];
        let m = enc.decode(&theta, &tiny, accel.connectivity());
        let mut rem = tiny.extents();
        for (level, spec) in m.levels().iter().enumerate() {
            for (d, t) in spec.trips.iter() {
                assert!(t <= rem[d].max(1), "trips exceed remaining extent");
            }
            rem = DimVec::from_fn(|d| ceil_div(rem[d], spec.trips[d]));
            let p = accel.connectivity().parallel_dims()[level];
            rem[p] = ceil_div(rem[p], accel.connectivity().sizes()[level]);
        }
    }
}
