//! The (μ, λ) evolution strategy of NAAS.
//!
//! Exactly the update the paper describes in §II-A0c: "we select the top
//! solutions as the parents of the next generation and use their center to
//! generate the new mean of the sampling distribution. We update the
//! covariance matrix of the distribution to increase the likelihood of
//! generating samples near the parents" — i.e. a cross-entropy-method
//! refit of a multivariate normal, the practical core of CMA-ES
//! [Hansen 2006] without step-size paths.

use crate::gaussian::{standard_normal, standard_normal_vec};
use crate::Optimizer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`CemEs`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EsConfig {
    /// Fraction of the generation kept as parents (paper keeps the "top
    /// solutions"; ¼ is the CMA-ES default regime).
    pub parent_fraction: f64,
    /// Initial standard deviation of every coordinate.
    pub init_std: f64,
    /// Variance floor preventing premature collapse.
    pub min_var: f64,
    /// Exponential smoothing of the mean update (1.0 = replace).
    pub mean_learning_rate: f64,
    /// Use a full covariance matrix (rank-μ estimate) instead of the
    /// diagonal refit. Costs O(d²) per sample; useful for the correlated
    /// hardware/mapping knobs ablation.
    pub full_covariance: bool,
}

impl Default for EsConfig {
    fn default() -> Self {
        EsConfig {
            parent_fraction: 0.25,
            init_std: 0.25,
            min_var: 1e-4,
            mean_learning_rate: 1.0,
            full_covariance: false,
        }
    }
}

/// Cross-entropy-method evolution strategy over `[0, 1]^dim`.
///
/// See the crate-level example for usage. All sampling is clipped to the
/// unit box, matching the paper's "multivariate normal distribution in
/// `[0, 1]^|θ|`".
///
/// The full state — distribution, Cholesky factor, RNG — is
/// serde-serializable so checkpointed searches resume the exact sampling
/// trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CemEs {
    dim: usize,
    cfg: EsConfig,
    mean: Vec<f64>,
    /// Diagonal variances (always maintained).
    var: Vec<f64>,
    /// Lower-triangular Cholesky factor of the full covariance, row-major
    /// `dim × dim`, only used when `cfg.full_covariance`.
    chol: Option<Vec<f64>>,
    rng: SmallRng,
    generation: u64,
}

impl CemEs {
    /// Creates an optimizer centred on the unit box's midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the config fractions are out of range.
    pub fn new(dim: usize, cfg: EsConfig, seed: u64) -> Self {
        assert!(dim > 0, "search space must have at least one knob");
        assert!(
            cfg.parent_fraction > 0.0 && cfg.parent_fraction <= 1.0,
            "parent fraction must be in (0, 1]"
        );
        assert!(cfg.init_std > 0.0, "initial std must be positive");
        CemEs {
            dim,
            cfg,
            mean: vec![0.5; dim],
            var: vec![cfg.init_std * cfg.init_std; dim],
            chol: None,
            rng: SmallRng::seed_from_u64(seed),
            generation: 0,
        }
    }

    /// Current distribution mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current per-coordinate variances.
    pub fn variances(&self) -> &[f64] {
        &self.var
    }

    /// Generations absorbed through [`Optimizer::tell`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Samples into a caller-owned buffer. The diagonal path (the
    /// default) draws normals straight into the output — no allocation at
    /// all; the full-covariance path needs the whole `z` vector before
    /// mixing and allocates it locally. Both consume the RNG in the exact
    /// order the original allocating sampler did (`z₀ … z_{d−1}`).
    fn sample_into(&mut self, x: &mut Vec<f64>) {
        x.clear();
        match &self.chol {
            Some(l) if self.cfg.full_covariance => {
                let z = standard_normal_vec(&mut self.rng, self.dim);
                for i in 0..self.dim {
                    let mut acc = self.mean[i];
                    for (j, zj) in z.iter().enumerate().take(i + 1) {
                        acc += l[i * self.dim + j] * zj;
                    }
                    x.push(acc);
                }
            }
            _ => {
                for i in 0..self.dim {
                    let z = standard_normal(&mut self.rng);
                    x.push(self.mean[i] + self.var[i].sqrt() * z);
                }
            }
        }
        for v in x.iter_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    }
}

impl Optimizer for CemEs {
    fn ask_into(&mut self, out: &mut Vec<f64>) {
        self.sample_into(out)
    }

    fn tell(&mut self, scored: &[(Vec<f64>, f64)]) {
        if scored.is_empty() {
            return;
        }
        self.generation += 1;
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| {
            scored[a]
                .1
                .partial_cmp(&scored[b].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let parents = ((scored.len() as f64 * self.cfg.parent_fraction).ceil() as usize)
            .clamp(1, scored.len());
        let elite: Vec<&[f64]> = order[..parents]
            .iter()
            .map(|&i| scored[i].0.as_slice())
            .collect();

        // New mean: parent centroid (optionally smoothed).
        let lr = self.cfg.mean_learning_rate;
        let mut centroid = vec![0.0; self.dim];
        for p in &elite {
            for (c, v) in centroid.iter_mut().zip(p.iter()) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= elite.len() as f64;
        }
        for (m, c) in self.mean.iter_mut().zip(&centroid) {
            *m = (1.0 - lr) * *m + lr * c;
        }

        // Refit variances around the new mean.
        for i in 0..self.dim {
            let mut v = 0.0;
            for p in &elite {
                let d = p[i] - self.mean[i];
                v += d * d;
            }
            v /= elite.len() as f64;
            self.var[i] = v.max(self.cfg.min_var);
        }

        if self.cfg.full_covariance {
            let mut cov = vec![0.0; self.dim * self.dim];
            for p in &elite {
                for i in 0..self.dim {
                    let di = p[i] - self.mean[i];
                    for j in 0..=i {
                        cov[i * self.dim + j] += di * (p[j] - self.mean[j]);
                    }
                }
            }
            for i in 0..self.dim {
                for j in 0..=i {
                    cov[i * self.dim + j] /= elite.len() as f64;
                }
                // Variance floor on the diagonal.
                cov[i * self.dim + i] = cov[i * self.dim + i].max(self.cfg.min_var);
            }
            self.chol = cholesky(&cov, self.dim);
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Lower-triangular Cholesky factor of a symmetric positive-semidefinite
/// matrix (lower triangle given row-major). Adds diagonal jitter on
/// failure; returns `None` if the matrix cannot be factored even with
/// jitter (the caller then falls back to the diagonal sampler).
fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    for jitter in [0.0, 1e-10, 1e-8, 1e-6] {
        if let Some(l) = try_cholesky(a, n, jitter) {
            return Some(l);
        }
    }
    None
}

fn try_cholesky(a: &[f64], n: usize, jitter: f64) -> Option<Vec<f64>> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            if i == j {
                sum += jitter;
            }
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mut es: CemEs, target: &[f64], gens: usize, pop: usize) -> Vec<f64> {
        for _ in 0..gens {
            let scored: Vec<(Vec<f64>, f64)> = (0..pop)
                .map(|_| {
                    let x = es.ask();
                    let s: f64 = x.iter().zip(target).map(|(v, t)| (v - t) * (v - t)).sum();
                    (x, s)
                })
                .collect();
            es.tell(&scored);
        }
        es.mean().to_vec()
    }

    #[test]
    fn converges_to_quadratic_optimum() {
        let target = [0.8, 0.2, 0.5, 0.9];
        let mean = run(CemEs::new(4, EsConfig::default(), 1), &target, 40, 24);
        for (m, t) in mean.iter().zip(&target) {
            assert!((m - t).abs() < 0.1, "mean {m} vs target {t}");
        }
    }

    #[test]
    fn full_covariance_converges_on_correlated_objective() {
        let cfg = EsConfig {
            full_covariance: true,
            ..EsConfig::default()
        };
        let mut es = CemEs::new(3, cfg, 5);
        // Objective couples coordinates: (x0 - x1)² + (x1 + x2 - 1)².
        for _ in 0..50 {
            let scored: Vec<(Vec<f64>, f64)> = (0..32)
                .map(|_| {
                    let x = es.ask();
                    let s = (x[0] - x[1]).powi(2) + (x[1] + x[2] - 1.0).powi(2);
                    (x, s)
                })
                .collect();
            es.tell(&scored);
        }
        let m = es.mean();
        assert!((m[0] - m[1]).abs() < 0.15);
        assert!((m[1] + m[2] - 1.0).abs() < 0.15);
    }

    #[test]
    fn samples_stay_in_unit_box() {
        let mut es = CemEs::new(8, EsConfig::default(), 9);
        for _ in 0..100 {
            let x = es.ask();
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CemEs::new(5, EsConfig::default(), 42);
        let mut b = CemEs::new(5, EsConfig::default(), 42);
        for _ in 0..10 {
            assert_eq!(a.ask(), b.ask());
        }
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        let mut es = CemEs::new(2, EsConfig::default(), 3);
        // Degenerate generation: identical parents.
        let x = vec![0.5, 0.5];
        let scored = vec![(x.clone(), 1.0), (x.clone(), 1.0), (x, 1.0)];
        for _ in 0..5 {
            es.tell(&scored);
        }
        assert!(es.variances().iter().all(|&v| v >= 1e-4));
        // Sampling still works and differs between draws eventually.
        let a = es.ask();
        let b = es.ask();
        assert!(a != b || es.ask() != a);
    }

    #[test]
    fn empty_tell_is_noop() {
        let mut es = CemEs::new(2, EsConfig::default(), 3);
        let mean_before = es.mean().to_vec();
        es.tell(&[]);
        assert_eq!(es.mean(), mean_before.as_slice());
        assert_eq!(es.generation(), 0);
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let n = 3;
        let mut a = vec![0.0; 9];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let l = cholesky(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((l[i * n + j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ask_into_consumes_rng_exactly_like_ask() {
        // Both sampling paths (diagonal and full-covariance) must draw
        // the same RNG sequence whichever entry point is used — the
        // batched pipeline's bit-identity depends on it.
        for full_covariance in [false, true] {
            let cfg = EsConfig {
                full_covariance,
                ..EsConfig::default()
            };
            let mut a = CemEs::new(5, cfg, 42);
            let mut b = CemEs::new(5, cfg, 42);
            // A tell so the full-covariance path has a Cholesky factor.
            let generation: Vec<(Vec<f64>, f64)> = (0..8).map(|i| (a.ask(), i as f64)).collect();
            for _ in 0..8 {
                b.ask();
            }
            a.tell(&generation);
            b.tell(&generation);
            let mut buf = Vec::new();
            for _ in 0..6 {
                b.ask_into(&mut buf);
                assert_eq!(a.ask(), buf, "full_covariance={full_covariance}");
            }
        }
    }

    #[test]
    fn batch_ask_matches_sequential_asks() {
        let mut a = CemEs::new(4, EsConfig::default(), 9);
        let mut b = CemEs::new(4, EsConfig::default(), 9);
        let mut slots = vec![Vec::new(); 7];
        a.ask_batch_into(&mut slots);
        for slot in &slots {
            assert_eq!(&b.ask(), slot);
        }
    }

    #[test]
    fn generation_counter_increments() {
        let mut es = CemEs::new(2, EsConfig::default(), 3);
        es.tell(&[(vec![0.1, 0.2], 1.0)]);
        es.tell(&[(vec![0.3, 0.4], 0.5)]);
        assert_eq!(es.generation(), 2);
    }
}
