//! # naas-opt — evolution strategies and search-space encodings
//!
//! The optimization machinery of NAAS (paper §II-A0c, Fig. 3):
//!
//! * [`CemEs`] — the (μ, λ) evolution strategy the paper describes:
//!   sample a population from a multivariate normal over `[0, 1]^|θ|`,
//!   rank candidates by EDP, refit the distribution to the top "parents",
//!   repeat. Diagonal covariance by default with an optional
//!   full-covariance (CMA-style rank-μ) update.
//! * [`RandomSearch`] — the uniform-sampling baseline of Fig. 4.
//! * [`encoding`] — decoders from optimizer vectors to typed design
//!   points: the **importance-based** encoding that is the paper's key
//!   contribution, the **index-based** baseline it ablates against
//!   (Fig. 9), the full hardware encoding (Fig. 2), the per-layer mapping
//!   encoding, and the sizing-only encoding used by prior work (Fig. 8).
//!
//! The optimizers use an ask/tell interface so searches can interleave
//! decoding, validity filtering (invalid decodes are resampled, §II-A0c)
//! and arbitrary evaluation backends.
//!
//! ```
//! use naas_opt::{CemEs, EsConfig, Optimizer};
//!
//! // Minimize the distance to 0.7 per coordinate.
//! let mut es = CemEs::new(4, EsConfig::default(), 42);
//! for _ in 0..30 {
//!     let pop: Vec<Vec<f64>> = (0..16).map(|_| es.ask()).collect();
//!     let scored: Vec<(Vec<f64>, f64)> = pop
//!         .into_iter()
//!         .map(|x| {
//!             let s = x.iter().map(|v| (v - 0.7).powi(2)).sum();
//!             (x, s)
//!         })
//!         .collect();
//!     es.tell(&scored);
//! }
//! assert!(es.mean().iter().all(|v| (v - 0.7).abs() < 0.15));
//! ```

pub mod design_space;
pub mod encoding;
pub mod es;
pub mod gaussian;
pub mod random;

pub use encoding::{EncodingScheme, HardwareEncoder, MappingEncoder, SizingOnlyEncoder};
pub use es::{CemEs, EsConfig};
pub use random::RandomSearch;

/// Ask/tell interface shared by [`CemEs`] and [`RandomSearch`].
///
/// Scores are minimized (NAAS uses EDP). `tell` receives the whole scored
/// generation; implementations may ignore it (random search).
///
/// The primitive sampling operation is [`Optimizer::ask_into`], which
/// fills a caller-owned buffer: batched search loops recycle their theta
/// buffers across millions of samples instead of allocating per ask.
/// Implementations must consume the RNG identically whichever entry point
/// is used, so scalar and batched drivers stay bit-identical.
pub trait Optimizer {
    /// Samples one candidate vector in `[0, 1]^dim` into a caller-owned
    /// buffer (cleared first; its allocation is reused).
    fn ask_into(&mut self, out: &mut Vec<f64>);

    /// Samples one candidate vector in `[0, 1]^dim`.
    fn ask(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        self.ask_into(&mut out);
        out
    }

    /// Samples one candidate per slot, in slot order — the batch-propose
    /// step of a batched generation. Equivalent to calling
    /// [`Optimizer::ask_into`] on each slot in sequence (and therefore
    /// consumes the RNG identically).
    fn ask_batch_into(&mut self, out: &mut [Vec<f64>]) {
        for slot in out {
            self.ask_into(slot);
        }
    }

    /// Updates the sampling distribution from a scored generation
    /// (vector, score), lower scores better.
    fn tell(&mut self, scored: &[(Vec<f64>, f64)]);

    /// Dimensionality of the search vector.
    fn dim(&self) -> usize;
}
