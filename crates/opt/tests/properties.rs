//! Property-based tests of the optimizers and encoders.

use naas_accel::{baselines, ResourceConstraint};
use naas_ir::ConvSpec;
use naas_opt::{
    CemEs, EncodingScheme, EsConfig, HardwareEncoder, MappingEncoder, Optimizer, RandomSearch,
    SizingOnlyEncoder,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ES samples stay in the unit box regardless of what it was told.
    #[test]
    fn es_samples_in_unit_box(
        seed in 0u64..1000,
        dim in 1usize..=32,
        scores in proptest::collection::vec((0.0f64..1.0, 0.0f64..1e6), 4..16),
    ) {
        let mut es = CemEs::new(dim, EsConfig::default(), seed);
        let scored: Vec<(Vec<f64>, f64)> = scores
            .iter()
            .map(|&(x, s)| (vec![x; dim], s))
            .collect();
        es.tell(&scored);
        for _ in 0..10 {
            let v = es.ask();
            prop_assert_eq!(v.len(), dim);
            prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    /// Random search is uniform-ish: asks are independent of tells.
    #[test]
    fn random_search_ignores_tells(seed in 0u64..1000) {
        let mut a = RandomSearch::new(4, seed);
        let mut b = RandomSearch::new(4, seed);
        b.tell(&[(vec![0.0; 4], 0.0)]);
        for _ in 0..5 {
            prop_assert_eq!(a.ask(), b.ask());
        }
    }

    /// Hardware decode is envelope-safe for every baseline and any vector,
    /// in both schemes.
    #[test]
    fn hardware_decode_envelope_safe(
        theta in proptest::collection::vec(0.0f64..=1.0, 13),
        which in 0usize..5,
        importance in proptest::bool::ANY,
    ) {
        let base = baselines::all().swap_remove(which);
        let envelope = ResourceConstraint::from_design(&base);
        let scheme = if importance {
            EncodingScheme::Importance
        } else {
            EncodingScheme::Index
        };
        let enc = HardwareEncoder::new(envelope.clone(), scheme);
        if let Some(d) = enc.decode(&theta[..enc.dim()]) {
            prop_assert!(envelope.admits(&d).is_ok());
            prop_assert!(d.sizing().l1_bytes() % 16 == 0);
            prop_assert!(d.connectivity().sizes().iter().all(|s| s % 2 == 0));
        }
    }

    /// Mapping decode is total: any vector gives a structurally valid
    /// mapping whose trips never exceed remaining extents.
    #[test]
    fn mapping_decode_total(
        theta in proptest::collection::vec(0.0f64..=1.0, 42),
        c in 1u64..=128,
        k in 1u64..=128,
        hw in 6u64..=64,
    ) {
        let layer = ConvSpec::conv2d("prop", c, k, (hw, hw), (3, 3), 1, 1).unwrap();
        for accel in [baselines::nvdla_256(), baselines::shidiannao()] {
            let enc = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
            let m = enc.decode(&theta[..enc.dim()], &layer, accel.connectivity());
            prop_assert!(m.validate(&accel).is_ok());
        }
    }

    /// Sizing-only decode preserves the baseline's dataflow class.
    #[test]
    fn sizing_only_preserves_dataflow(theta in proptest::array::uniform4(0.0f64..=1.0)) {
        for base in baselines::all() {
            let envelope = ResourceConstraint::from_design(&base);
            let enc = SizingOnlyEncoder::new(base.clone(), envelope.clone());
            if let Some(d) = enc.decode(&theta) {
                prop_assert_eq!(
                    d.connectivity().dataflow_label(),
                    base.connectivity().dataflow_label()
                );
                prop_assert!(envelope.admits(&d).is_ok());
            }
        }
    }

    /// The ES actually optimizes: after enough generations on a sphere
    /// function, the mean is closer to the optimum than at start.
    #[test]
    fn es_improves_on_sphere(seed in 0u64..100) {
        let target = [0.3, 0.8, 0.5];
        let dist = |v: &[f64]| -> f64 {
            v.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let mut es = CemEs::new(3, EsConfig::default(), seed);
        let start = dist(es.mean());
        for _ in 0..15 {
            let scored: Vec<(Vec<f64>, f64)> = (0..16)
                .map(|_| {
                    let x = es.ask();
                    let s = dist(&x);
                    (x, s)
                })
                .collect();
            es.tell(&scored);
        }
        prop_assert!(dist(es.mean()) <= start + 1e-9);
    }
}
