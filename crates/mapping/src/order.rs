//! Loop-order utilities: importance-based decoding (the paper's key
//! encoding trick, §II-A0b and Fig. 3) and Lehmer-code enumeration (the
//! index-based baseline it is compared against in Fig. 9).

use naas_ir::{Dim, DIMS};

/// Decodes six importance values into a loop order, most-important
/// outermost — the paper's importance-based encoding (Fig. 3, right).
///
/// Ties break toward canonical dimension order (`K,C,Y,X,R,S`) so the
/// decode is deterministic for any input, including NaN-free equal values.
///
/// ```
/// use naas_ir::Dim;
/// use naas_mapping::order_from_importance;
/// // C and R share the largest value 5: C wins the tie, R second.
/// let order = order_from_importance(&[3.0, 5.0, 2.0, 4.0, 5.0, 1.0]);
/// assert_eq!(order[0], Dim::C);
/// assert_eq!(order[1], Dim::R);
/// assert_eq!(order[5], Dim::S);
/// ```
pub fn order_from_importance(importance: &[f64; 6]) -> [Dim; 6] {
    let mut indexed = [(0usize, 0.0f64); 6];
    for (i, v) in importance.iter().copied().enumerate() {
        indexed[i] = (i, if v.is_nan() { f64::NEG_INFINITY } else { v });
    }
    // Stable sort keeps canonical order among ties (allocation-free at
    // this length: slices this short insertion-sort in place).
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("nan already mapped out"));
    let mut out = DIMS;
    for (slot, (dim_idx, _)) in indexed.into_iter().enumerate() {
        out[slot] = Dim::from_index(dim_idx).expect("index < 6");
    }
    out
}

/// Decodes six importance values into the `k` parallel dimensions of a
/// k-D array: the k most-important dimensions, in importance order
/// (Fig. 3, left).
///
/// ```
/// use naas_ir::Dim;
/// use naas_mapping::parallel_dims_from_importance;
/// let dims = parallel_dims_from_importance(&[6.0, 4.0, 2.0, 2.0, 3.0, 1.0], 2);
/// assert_eq!(dims, vec![Dim::K, Dim::C]);
/// ```
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 6.
pub fn parallel_dims_from_importance(importance: &[f64; 6], k: usize) -> Vec<Dim> {
    assert!((1..=6).contains(&k), "parallel dim count must be in 1..=6");
    order_from_importance(importance)[..k].to_vec()
}

/// Number of permutations of the six dimensions.
pub const NUM_ORDERS: u64 = 720;

/// Decodes a Lehmer index in `0..720` into a permutation of the six
/// dimensions — the index-based encoding baseline of Fig. 9.
///
/// ```
/// use naas_ir::DIMS;
/// use naas_mapping::{lehmer_index, perm_from_lehmer};
/// assert_eq!(perm_from_lehmer(0), DIMS);
/// for idx in [0, 1, 119, 719] {
///     assert_eq!(lehmer_index(&perm_from_lehmer(idx)), idx);
/// }
/// ```
///
/// # Panics
///
/// Panics if `index >= 720`.
pub fn perm_from_lehmer(index: u64) -> [Dim; 6] {
    assert!(index < NUM_ORDERS, "lehmer index must be < 720");
    let mut available: Vec<Dim> = DIMS.to_vec();
    let mut out = DIMS;
    let mut rem = index;
    let mut radix: u64 = 120; // 5!
    for (slot, out_slot) in out.iter_mut().enumerate() {
        let pick = (rem / radix) as usize;
        rem %= radix;
        *out_slot = available.remove(pick);
        if slot < 5 {
            radix /= (5 - slot) as u64;
        }
    }
    out
}

/// Encodes a permutation as its Lehmer index in `0..720`
/// (inverse of [`perm_from_lehmer`]).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of all six dimensions.
pub fn lehmer_index(perm: &[Dim; 6]) -> u64 {
    assert!(
        naas_ir::dims::is_permutation(perm),
        "input must be a permutation of all six dims"
    );
    let mut available: Vec<Dim> = DIMS.to_vec();
    let mut index: u64 = 0;
    let mut radix: u64 = 120;
    for (slot, &dim) in perm.iter().enumerate() {
        let pick = available
            .iter()
            .position(|&d| d == dim)
            .expect("permutation contains every dim");
        index += pick as u64 * radix;
        available.remove(pick);
        if slot < 5 {
            radix /= (5 - slot) as u64;
        }
    }
    index
}

/// Number of ways to choose `k` parallel dimensions out of 6, counting
/// order (the index-based hardware encoding enumerates these).
pub fn num_parallel_choices(k: usize) -> u64 {
    match k {
        1 => 6,
        2 => 30,
        3 => 120,
        _ => 0,
    }
}

/// Decodes an enumeration index into `k` distinct parallel dimensions —
/// the index-based hardware-encoding baseline of Fig. 9.
///
/// # Panics
///
/// Panics if `k` is not 1..=3 or `index` is out of range.
pub fn parallel_dims_from_index(index: u64, k: usize) -> Vec<Dim> {
    let total = num_parallel_choices(k);
    assert!(total > 0, "k must be 1, 2 or 3");
    assert!(index < total, "index {index} out of range for k={k}");
    let mut available: Vec<Dim> = DIMS.to_vec();
    let mut out = Vec::with_capacity(k);
    let mut rem = index;
    let mut slots_left = k;
    while slots_left > 0 {
        // radix = P(available-1, slots_left-1): arrangements of the rest.
        let radix = perms(available.len() as u64 - 1, slots_left as u64 - 1);
        let pick = (rem / radix) as usize;
        rem %= radix;
        out.push(available.remove(pick));
        slots_left -= 1;
    }
    out
}

/// Encodes `k` distinct parallel dimensions as their enumeration index —
/// the inverse of [`parallel_dims_from_index`].
///
/// # Panics
///
/// Panics if `dims` is empty, longer than 3, or contains duplicates.
pub fn parallel_choice_index(dims: &[Dim]) -> u64 {
    let k = dims.len();
    assert!((1..=3).contains(&k), "k must be 1, 2 or 3");
    let mut available: Vec<Dim> = DIMS.to_vec();
    let mut index = 0u64;
    let mut slots_left = k;
    for &d in dims {
        let radix = perms(available.len() as u64 - 1, slots_left as u64 - 1);
        let pick = available
            .iter()
            .position(|&a| a == d)
            .expect("dims must be distinct members of DIMS");
        index += pick as u64 * radix;
        available.remove(pick);
        slots_left -= 1;
    }
    index
}

/// Falling factorial: number of ordered arrangements of `k` items from `n`.
fn perms(n: u64, k: u64) -> u64 {
    (0..k).map(|i| n - i).product::<u64>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_matches_paper_figure3_example() {
        // Fig. 3 right: importances K=3,C=5,Y'=2,X'=4,R=5,S=1
        // → order C,R,X',K,Y',S (ties C-before-R by canonical order).
        let order = order_from_importance(&[3.0, 5.0, 2.0, 4.0, 5.0, 1.0]);
        assert_eq!(order, [Dim::C, Dim::R, Dim::X, Dim::K, Dim::Y, Dim::S]);
    }

    #[test]
    fn importance_parallel_matches_paper_figure3_example() {
        // Fig. 3 left: importances K=4,C=6,Y'=2,X'=2,R=3,S=1 → parallel C,K.
        let dims = parallel_dims_from_importance(&[4.0, 6.0, 2.0, 2.0, 3.0, 1.0], 2);
        assert_eq!(dims, vec![Dim::C, Dim::K]);
    }

    #[test]
    fn nan_importance_sinks_to_innermost() {
        let order = order_from_importance(&[f64::NAN, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(order[5], Dim::K);
    }

    #[test]
    fn lehmer_round_trip_all_720() {
        for idx in 0..NUM_ORDERS {
            let perm = perm_from_lehmer(idx);
            assert!(naas_ir::dims::is_permutation(&perm));
            assert_eq!(lehmer_index(&perm), idx);
        }
    }

    #[test]
    #[should_panic(expected = "lehmer index")]
    fn lehmer_out_of_range_panics() {
        let _ = perm_from_lehmer(720);
    }

    #[test]
    fn parallel_index_decoding_is_exhaustive_and_distinct() {
        for k in 1..=3usize {
            let total = num_parallel_choices(k);
            let mut seen = std::collections::HashSet::new();
            for idx in 0..total {
                let dims = parallel_dims_from_index(idx, k);
                assert_eq!(dims.len(), k);
                let mut sorted = dims.clone();
                sorted.dedup();
                assert_eq!(sorted.len(), k, "duplicate dim in decode");
                assert!(seen.insert(dims), "decode not injective at {idx}");
            }
            assert_eq!(seen.len(), total as usize);
        }
    }

    #[test]
    fn equal_importance_is_canonical_order() {
        let order = order_from_importance(&[1.0; 6]);
        assert_eq!(order, naas_ir::DIMS);
    }

    #[test]
    fn parallel_choice_index_inverts_decoding() {
        for k in 1..=3usize {
            for idx in 0..num_parallel_choices(k) {
                let dims = parallel_dims_from_index(idx, k);
                assert_eq!(parallel_choice_index(&dims), idx);
            }
        }
    }
}
