//! MAESTRO-style rendering of a mapping (paper Fig. 2, right panel).
//!
//! The paper describes mappings in MAESTRO's data-centric directive
//! format, which fuses the array parameters and the mapping strategy:
//! `TemporalMap(size, offset) DIM`, `SpatialMap(size, offset) DIM` and
//! `Cluster(n, P)` describing one level of the PE hierarchy. This module
//! renders our loop-nest mappings in that format for inspection and for
//! comparison against the figures in the paper.

use crate::mapping::Mapping;
use naas_accel::Connectivity;
use naas_ir::{ConvSpec, Dim};
use std::fmt::Write as _;

/// Renders a `(layer, connectivity, mapping)` triple in MAESTRO's
/// directive syntax.
///
/// ```
/// use naas_accel::baselines;
/// use naas_ir::ConvSpec;
/// use naas_mapping::{maestro, Mapping};
///
/// let accel = baselines::nvdla_256();
/// let layer = ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1)?;
/// let mapping = Mapping::balanced(&layer, &accel);
/// let text = maestro::render(&layer, accel.connectivity(), &mapping);
/// assert!(text.contains("SpatialMap"));
/// assert!(text.contains("Cluster"));
/// # Ok::<(), naas_ir::ShapeError>(())
/// ```
pub fn render(layer: &ConvSpec, conn: &Connectivity, mapping: &Mapping) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Network {} {{", layer.name());
    let _ = writeln!(out, "  Type: CONV");
    let _ = writeln!(
        out,
        "  Dimensions {{ K:{}, C:{}, Y':{}, X':{}, R:{}, S:{} }}",
        layer.extent(Dim::K),
        layer.extent(Dim::C),
        layer.extent(Dim::Y),
        layer.extent(Dim::X),
        layer.extent(Dim::R),
        layer.extent(Dim::S)
    );
    let _ = writeln!(out, "  Dataflow {{");

    let tiles = mapping.tiles_per_level(layer, conn);
    for (level, spec) in mapping.levels().iter().enumerate() {
        let tile = &tiles[level];
        for &d in &spec.order {
            let size = tile[d];
            let _ = writeln!(out, "    TemporalMap({size},{size}) {};", d.paper_name());
        }
        let p = conn.parallel_dims()[level];
        let _ = writeln!(out, "    SpatialMap(1,1) {};", p.paper_name());
        let _ = writeln!(out, "    Cluster({}, P);", conn.sizes()[level]);
    }
    for &d in mapping.pe_order() {
        let _ = writeln!(out, "    TemporalMap(1,1) {};", d.paper_name());
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;

    #[test]
    fn render_contains_one_cluster_per_array_level() {
        let accel = baselines::nvdla_256();
        let layer = ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1).unwrap();
        let mapping = Mapping::balanced(&layer, &accel);
        let text = render(&layer, accel.connectivity(), &mapping);
        assert_eq!(text.matches("Cluster(").count(), 2);
        assert_eq!(text.matches("SpatialMap").count(), 2);
    }

    #[test]
    fn render_uses_paper_dim_names() {
        let accel = baselines::shidiannao();
        let layer = ConvSpec::conv2d("c", 8, 8, (16, 16), (3, 3), 1, 1).unwrap();
        let mapping = Mapping::balanced(&layer, &accel);
        let text = render(&layer, accel.connectivity(), &mapping);
        assert!(text.contains("Y'"));
        assert!(text.contains("X'"));
        assert!(text.contains("Dimensions"));
    }
}
