//! Tile-geometry arithmetic shared by the mapping decoder and cost model.

use naas_ir::DimVec;

/// Ceiling division for tile extents.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0, "tile divisor must be positive");
    a.div_ceil(b)
}

/// Splits an extent into `trips` tiles: returns the extent of one child
/// tile, `ceil(extent / trips)`.
///
/// The last tile may be ragged; the cost model charges full tiles (the
/// conservative ceiling model used by MAESTRO-class estimators), so the
/// utilization loss from ragged edges is captured by trip × tile ≥ extent.
#[inline]
pub fn child_extent(extent: u64, trips: u64) -> u64 {
    ceil_div(extent, trips.max(1))
}

/// Applies a whole [`DimVec`] of trip counts to a [`DimVec`] of extents.
pub fn child_extents(extents: &DimVec<u64>, trips: &DimVec<u64>) -> DimVec<u64> {
    extents.map(|d, e| child_extent(e, trips[d]))
}

/// Decodes a tiling *ratio* in `[0, 1]` into a trip count in
/// `1..=extent` — the paper's ratio-based tiling encoding (§II-B):
/// "since tiling sizes are highly related to the network parameters, we
/// use the scaling ratio rather than the absolute tiling value".
///
/// `ratio = 0` → 1 trip (no tiling); `ratio = 1` → `extent` trips
/// (fully tiled, one element per tile).
///
/// ```
/// use naas_mapping::tiling::trips_from_ratio;
/// assert_eq!(trips_from_ratio(56, 0.0), 1);
/// assert_eq!(trips_from_ratio(56, 1.0), 56);
/// assert_eq!(trips_from_ratio(1, 0.7), 1);
/// ```
pub fn trips_from_ratio(extent: u64, ratio: f64) -> u64 {
    if extent <= 1 {
        return 1;
    }
    let r = ratio.clamp(0.0, 1.0);
    // Geometric interpolation between 1 and extent keeps small trip counts
    // reachable even for large extents (a linear scale would make "no
    // tiling" a measure-zero choice for 100k-element dims).
    let trips = (extent as f64).powf(r).round() as u64;
    trips.clamp(1, extent)
}

/// Inverse of [`trips_from_ratio`] up to rounding: the ratio that decodes
/// to (approximately) the given trip count.
pub fn ratio_from_trips(extent: u64, trips: u64) -> f64 {
    if extent <= 1 || trips <= 1 {
        return 0.0;
    }
    let t = trips.min(extent) as f64;
    (t.ln() / (extent as f64).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_ir::Dim;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(1, 5), 1);
        assert_eq!(ceil_div(0, 5), 0);
    }

    #[test]
    fn child_extent_covers_parent() {
        for extent in [1u64, 7, 56, 224] {
            for trips in [1u64, 2, 3, 5, 56] {
                let child = child_extent(extent, trips);
                assert!(child * trips.min(extent) >= extent);
                assert!(child >= 1);
            }
        }
    }

    #[test]
    fn child_extents_applies_per_dim() {
        let extents = DimVec([64, 32, 56, 56, 3, 3]);
        let trips = DimVec([4, 1, 8, 8, 1, 1]);
        let child = child_extents(&extents, &trips);
        assert_eq!(child[Dim::K], 16);
        assert_eq!(child[Dim::Y], 7);
        assert_eq!(child[Dim::R], 3);
    }

    #[test]
    fn ratio_endpoints() {
        assert_eq!(trips_from_ratio(100, 0.0), 1);
        assert_eq!(trips_from_ratio(100, 1.0), 100);
        assert_eq!(trips_from_ratio(0, 0.5), 1);
    }

    #[test]
    fn ratio_is_monotone() {
        let extent = 512;
        let mut last = 0;
        for step in 0..=20 {
            let trips = trips_from_ratio(extent, step as f64 / 20.0);
            assert!(trips >= last);
            last = trips;
        }
    }

    #[test]
    fn ratio_round_trips_through_trips() {
        for extent in [2u64, 7, 56, 512] {
            for trips in [1u64, 2, extent / 2 + 1, extent] {
                let r = ratio_from_trips(extent, trips);
                let back = trips_from_ratio(extent, r);
                // Round-trip within one rounding step.
                assert!(
                    (back as i64 - trips as i64).abs() <= 1,
                    "extent {extent} trips {trips} -> ratio {r} -> {back}"
                );
            }
        }
    }
}
