//! # naas-mapping — compiler mapping descriptions
//!
//! The *compiler side* of the NAAS search space (paper §II-B, Fig. 2-3).
//! A mapping assigns, to every level of the accelerator's loop-nest
//! hierarchy, an execution order of the six convolution dimensions and the
//! temporal tiling (trip counts) of each dimension:
//!
//! * one [`LevelSpec`] per array dimension (outermost first) — temporal
//!   loops over tiles followed by the spatial split of that array
//!   dimension's parallel dim;
//! * one PE-level loop order — element-wise execution inside a PE (the
//!   paper fixes one MAC per PE, so the PE level has orders but no tiling).
//!
//! [`Mapping::pe_tile`] and [`Mapping::tiles_per_level`] expose the decoded
//! tile geometry consumed by the cost model; [`maestro`] renders the
//! MAESTRO-style description shown in the paper's Fig. 2.
//!
//! ```
//! use naas_accel::baselines;
//! use naas_ir::models;
//! use naas_mapping::Mapping;
//!
//! let accel = baselines::eyeriss();
//! let layer = &models::resnet50(224).layers()[5].clone();
//! let mapping = Mapping::balanced(layer, &accel);
//! mapping.validate(&accel).expect("heuristic mappings are structurally valid");
//! let tile = mapping.pe_tile(layer, accel.connectivity());
//! assert!(tile.is_positive());
//! ```

pub mod maestro;
pub mod mapping;
pub mod order;
pub mod tiling;

pub use mapping::{LevelSpec, Mapping, MappingError};
pub use order::{
    lehmer_index, order_from_importance, parallel_dims_from_importance, perm_from_lehmer,
};
