//! The mapping description: per-level loop orders and tilings.

use crate::tiling::{ceil_div, child_extents};
use naas_accel::{Accelerator, Connectivity};
use naas_ir::{dims::is_permutation, ConvSpec, Dim, DimVec, DIMS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One array level of a mapping: the temporal loop order over child tiles
/// and the trip count of each dimension at this level.
///
/// After the temporal loops of level `l`, array dimension `l` spatially
/// splits its parallel dimension across `sizes[l]` clusters (the spatial
/// split itself is part of the accelerator's [`Connectivity`], not of the
/// mapping — changing connectivity invalidates mappings, which is exactly
/// the coupling the paper highlights).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Temporal loop order, outermost first.
    pub order: [Dim; 6],
    /// Temporal trip counts (≥ 1) for each dimension at this level.
    pub trips: DimVec<u64>,
}

impl LevelSpec {
    /// A level that executes everything in a single tile, canonical order.
    pub fn unit() -> Self {
        LevelSpec {
            order: DIMS,
            trips: DimVec::splat(1),
        }
    }
}

/// Error validating a [`Mapping`] against an accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The mapping has a different number of array levels than the design.
    WrongLevelCount {
        /// Levels required by the accelerator (its array rank).
        expected: usize,
        /// Levels present in the mapping.
        got: usize,
    },
    /// A loop order is not a permutation of all six dimensions.
    NotAPermutation {
        /// Offending level (`levels.len()` denotes the PE level).
        level: usize,
    },
    /// A trip count of zero.
    ZeroTrips {
        /// Offending level.
        level: usize,
        /// Offending dimension.
        dim: Dim,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::WrongLevelCount { expected, got } => {
                write!(f, "mapping has {got} array levels, design needs {expected}")
            }
            MappingError::NotAPermutation { level } => {
                write!(f, "loop order at level {level} is not a permutation")
            }
            MappingError::ZeroTrips { level, dim } => {
                write!(f, "zero trip count for {dim} at level {level}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A complete compiler mapping for one layer on one accelerator: one
/// [`LevelSpec`] per array dimension (outermost first) plus the PE-level
/// loop order (paper Fig. 2, "Mapping Encoding Vector").
///
/// ```
/// use naas_mapping::{LevelSpec, Mapping};
/// use naas_ir::{DimVec, DIMS};
///
/// let m = Mapping::new(vec![LevelSpec::unit(), LevelSpec::unit()], DIMS);
/// assert_eq!(m.levels().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    levels: Vec<LevelSpec>,
    pe_order: [Dim; 6],
}

impl Mapping {
    /// Creates a mapping from explicit levels; structural checks are
    /// deferred to [`Mapping::validate`] so that optimizers can construct
    /// candidates freely.
    pub fn new(levels: Vec<LevelSpec>, pe_order: [Dim; 6]) -> Self {
        Mapping { levels, pe_order }
    }

    /// The array levels, outermost first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Element-wise loop order inside each PE.
    pub fn pe_order(&self) -> &[Dim; 6] {
        &self.pe_order
    }

    /// Clears the array levels in place, keeping their allocation — the
    /// first step of rebuilding this mapping for a new candidate
    /// (`LevelSpec` is plain data, so a cleared+refilled level vector
    /// never reallocates once it has reached its high-water length).
    pub fn clear_levels(&mut self) {
        self.levels.clear();
    }

    /// Appends one array level (outermost first).
    pub fn push_level(&mut self, level: LevelSpec) {
        self.levels.push(level);
    }

    /// Replaces the PE-level loop order.
    pub fn set_pe_order(&mut self, order: [Dim; 6]) {
        self.pe_order = order;
    }

    /// Structural validation against an accelerator design.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found: level-count mismatch,
    /// non-permutation order, or zero trip count. (Capacity validation is
    /// the cost model's job — it depends on data widths.)
    pub fn validate(&self, accel: &Accelerator) -> Result<(), MappingError> {
        let expected = accel.connectivity().ndim();
        if self.levels.len() != expected {
            return Err(MappingError::WrongLevelCount {
                expected,
                got: self.levels.len(),
            });
        }
        for (i, level) in self.levels.iter().enumerate() {
            if !is_permutation(&level.order) {
                return Err(MappingError::NotAPermutation { level: i });
            }
            for (dim, trips) in level.trips.iter() {
                if trips == 0 {
                    return Err(MappingError::ZeroTrips { level: i, dim });
                }
            }
        }
        if !is_permutation(&self.pe_order) {
            return Err(MappingError::NotAPermutation {
                level: self.levels.len(),
            });
        }
        Ok(())
    }

    /// The tile extents processed by **one temporal iteration** at each
    /// array level, outermost first (`result[0]` is the L2-resident tile).
    ///
    /// The walk alternates temporal tiling and spatial splitting:
    /// `tile_l = ceil(tile_{l-1,post-spatial} / trips_l)`, then the
    /// parallel dimension of array axis `l` is divided by its cluster
    /// count.
    pub fn tiles_per_level(&self, layer: &ConvSpec, conn: &Connectivity) -> Vec<DimVec<u64>> {
        let mut out = Vec::with_capacity(self.levels.len());
        self.tiles_per_level_into(layer, conn, &mut out);
        out
    }

    /// [`Mapping::tiles_per_level`] into a caller-owned buffer (cleared
    /// first) — the batched evaluation pipeline reuses one buffer across
    /// a whole population instead of allocating per candidate.
    pub fn tiles_per_level_into(
        &self,
        layer: &ConvSpec,
        conn: &Connectivity,
        out: &mut Vec<DimVec<u64>>,
    ) {
        out.clear();
        let mut rem = layer.extents();
        for (level, spec) in self.levels.iter().enumerate() {
            rem = child_extents(&rem, &spec.trips);
            out.push(rem);
            if level < conn.ndim() {
                let p = conn.parallel_dims()[level];
                let s = conn.sizes()[level];
                rem[p] = ceil_div(rem[p], s);
            }
        }
    }

    /// The L2-resident tile extents — `tiles_per_level()[0]`, computed
    /// directly from the level-0 trips without walking (or allocating)
    /// the whole hierarchy. The evaluation hot path uses this plus
    /// [`Mapping::pe_tile`] instead of the full per-level walk.
    ///
    /// # Panics
    ///
    /// Panics if the mapping has no levels (callers validate first).
    pub fn l2_tile(&self, layer: &ConvSpec) -> DimVec<u64> {
        child_extents(&layer.extents(), &self.levels[0].trips)
    }

    /// The per-PE (L1-resident) tile extents after all temporal tilings
    /// and spatial splits.
    pub fn pe_tile(&self, layer: &ConvSpec, conn: &Connectivity) -> DimVec<u64> {
        let mut rem = layer.extents();
        for (level, spec) in self.levels.iter().enumerate() {
            rem = child_extents(&rem, &spec.trips);
            if level < conn.ndim() {
                let p = conn.parallel_dims()[level];
                let s = conn.sizes()[level];
                rem[p] = ceil_div(rem[p], s);
            }
        }
        rem
    }

    /// Builds a capacity-aware heuristic mapping: outer loops keep weights
    /// resident (`C`,`K` outermost), and trip counts grow on the largest
    /// dimensions until the L2 tile is ≈¼ of L2 and the PE tile is ≈¼ of
    /// L1 (leaving room for double buffering; element size ≈ 1 byte,
    /// refined by the cost model's real capacity check).
    ///
    /// This is the default mapping given to baseline designs when no
    /// mapping search is run, and the seed for mapping search.
    pub fn balanced(layer: &ConvSpec, accel: &Accelerator) -> Mapping {
        let conn = accel.connectivity();
        let ndim = conn.ndim();
        let mut levels = vec![LevelSpec::unit(); ndim];
        levels[0].order = [Dim::C, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];

        let mut mapping = Mapping::new(levels, DIMS);

        // Grow level-0 trips until the L2-resident tile fits.
        let l2_budget = (accel.sizing().l2_bytes() / 4).max(1);
        Self::grow_until(&mut mapping, layer, l2_budget);
        // Grow innermost-level trips until the PE tile fits L1.
        let l1_budget = (accel.sizing().l1_bytes() / 4).max(1);
        Self::grow_until_pe(&mut mapping, layer, conn, l1_budget);
        mapping
    }

    /// Rough tile footprint in elements (1-byte model): weights + input
    /// halo + partial sums.
    pub fn tile_footprint_elems(layer: &ConvSpec, tile: &DimVec<u64>) -> u64 {
        let w = tile[Dim::K] * tile[Dim::C] * tile[Dim::R] * tile[Dim::S];
        let iy = layer.input_halo(tile[Dim::Y], tile[Dim::R]);
        let ix = layer.input_halo(tile[Dim::X], tile[Dim::S]);
        let i = tile[Dim::C] * iy * ix;
        let o = tile[Dim::K] * tile[Dim::Y] * tile[Dim::X];
        w + i + o
    }

    /// Picks the dimension whose trip count to double: the largest of the
    /// channel/spatial dims, falling back to the kernel dims (`R`,`S`)
    /// once those are exhausted (large kernels on tiny L1s need it).
    fn grow_candidate(tile: &DimVec<u64>) -> Option<Dim> {
        let primary = [Dim::K, Dim::C, Dim::Y, Dim::X]
            .into_iter()
            .max_by_key(|&d| tile[d])
            .expect("nonempty candidate set");
        if tile[primary] > 1 {
            return Some(primary);
        }
        let kernel = [Dim::R, Dim::S]
            .into_iter()
            .max_by_key(|&d| tile[d])
            .expect("nonempty candidate set");
        (tile[kernel] > 1).then_some(kernel)
    }

    /// Grows level-0 trips until the L2-resident tile fits the budget.
    fn grow_until(mapping: &mut Mapping, layer: &ConvSpec, budget_elems: u64) {
        for _ in 0..64 {
            let tile = mapping.l2_tile(layer);
            if Self::tile_footprint_elems(layer, &tile) <= budget_elems {
                return;
            }
            match Self::grow_candidate(&tile) {
                Some(grow) => mapping.levels[0].trips[grow] *= 2,
                None => return, // nothing left to split
            }
        }
    }

    fn grow_until_pe(
        mapping: &mut Mapping,
        layer: &ConvSpec,
        conn: &Connectivity,
        budget_elems: u64,
    ) {
        let last = mapping.levels.len() - 1;
        for _ in 0..64 {
            let tile = mapping.pe_tile(layer, conn);
            if Self::tile_footprint_elems(layer, &tile) <= budget_elems {
                return;
            }
            match Self::grow_candidate(&tile) {
                Some(grow) => mapping.levels[last].trips[grow] *= 2,
                None => return,
            }
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate() {
            write!(f, "L{i} order [")?;
            for (j, d) in level.order.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", d.paper_name())?;
            }
            write!(f, "] trips [")?;
            for (j, (_, t)) in level.trips.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "PE order [")?;
        for (j, d) in self.pe_order.iter().enumerate() {
            if j > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", d.paper_name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1).unwrap()
    }

    #[test]
    fn unit_mapping_pe_tile_divides_by_array() {
        let accel = baselines::nvdla_256(); // 16x16 C,K parallel
        let m = Mapping::new(vec![LevelSpec::unit(), LevelSpec::unit()], DIMS);
        let tile = m.pe_tile(&layer(), accel.connectivity());
        assert_eq!(tile[Dim::C], 4); // 64 / 16
        assert_eq!(tile[Dim::K], 8); // 128 / 16
        assert_eq!(tile[Dim::Y], 56);
    }

    #[test]
    fn temporal_trips_shrink_tiles() {
        let accel = baselines::nvdla_256();
        let mut l0 = LevelSpec::unit();
        l0.trips[Dim::Y] = 8;
        let m = Mapping::new(vec![l0, LevelSpec::unit()], DIMS);
        let tiles = m.tiles_per_level(&layer(), accel.connectivity());
        assert_eq!(tiles[0][Dim::Y], 7);
        let pe = m.pe_tile(&layer(), accel.connectivity());
        assert_eq!(pe[Dim::Y], 7);
    }

    #[test]
    fn validate_rejects_wrong_level_count() {
        let accel = baselines::nvdla_256();
        let m = Mapping::new(vec![LevelSpec::unit()], DIMS);
        assert!(matches!(
            m.validate(&accel),
            Err(MappingError::WrongLevelCount {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_bad_order_and_zero_trips() {
        let accel = baselines::nvdla_256();
        let mut bad_order = LevelSpec::unit();
        bad_order.order[0] = bad_order.order[1];
        let m = Mapping::new(vec![bad_order, LevelSpec::unit()], DIMS);
        assert!(matches!(
            m.validate(&accel),
            Err(MappingError::NotAPermutation { level: 0 })
        ));

        let mut zero = LevelSpec::unit();
        zero.trips[Dim::K] = 0;
        let m = Mapping::new(vec![LevelSpec::unit(), zero], DIMS);
        assert!(matches!(
            m.validate(&accel),
            Err(MappingError::ZeroTrips {
                level: 1,
                dim: Dim::K
            })
        ));
    }

    #[test]
    fn balanced_mapping_is_valid_for_all_baselines() {
        let net = models::mobilenet_v2(224);
        for accel in baselines::all() {
            for l in net.layers().iter().take(8) {
                let m = Mapping::balanced(l, &accel);
                m.validate(&accel).expect("balanced mapping validates");
                assert!(m.pe_tile(l, accel.connectivity()).is_positive());
            }
        }
    }

    #[test]
    fn balanced_mapping_respects_rough_budgets() {
        let accel = baselines::eyeriss();
        let l = layer();
        let m = Mapping::balanced(&l, &accel);
        let tiles = m.tiles_per_level(&l, accel.connectivity());
        let l2_elems = Mapping::tile_footprint_elems(&l, &tiles[0]);
        assert!(l2_elems <= accel.sizing().l2_bytes());
    }

    #[test]
    fn display_lists_all_levels() {
        let m = Mapping::new(vec![LevelSpec::unit(), LevelSpec::unit()], DIMS);
        let s = m.to_string();
        assert!(s.contains("L0 order"));
        assert!(s.contains("L1 order"));
        assert!(s.contains("PE order"));
    }
}
