//! Property-based tests of mapping decode utilities and tile geometry.

use naas_accel::baselines;
use naas_ir::{dims::is_permutation, ConvSpec, DIMS};
use naas_mapping::order::{lehmer_index, perm_from_lehmer, NUM_ORDERS};
use naas_mapping::tiling::{ratio_from_trips, trips_from_ratio};
use naas_mapping::{maestro, order_from_importance, Mapping};
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = ConvSpec> {
    (1u64..=256, 1u64..=256, 6u64..=64, 1u64..=2)
        .prop_filter_map("valid shapes", |(c, k, hw, s)| {
            ConvSpec::conv2d("prop", c, k, (hw, hw), (3, 3), s, 1).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Importance decode always yields a permutation, and the most
    /// important dimension is outermost.
    #[test]
    fn importance_decode_is_permutation(imp in proptest::array::uniform6(0.0f64..=1.0)) {
        let order = order_from_importance(&imp);
        prop_assert!(is_permutation(&order));
        let max_idx = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        // The argmax dim appears at slot 0 unless tied (ties break
        // canonically, still one of the maxima).
        prop_assert!(imp[order[0].index()] >= imp[max_idx] - 1e-12);
    }

    /// Lehmer encode/decode is a bijection over all 720 orders.
    #[test]
    fn lehmer_bijection(idx in 0u64..NUM_ORDERS) {
        let p = perm_from_lehmer(idx);
        prop_assert!(is_permutation(&p));
        prop_assert_eq!(lehmer_index(&p), idx);
    }

    /// Ratio-decoded trip counts stay within [1, extent] and are monotone
    /// in the ratio.
    #[test]
    fn trips_bounds_and_monotonicity(extent in 1u64..=4096, a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = trips_from_ratio(extent, lo);
        let t_hi = trips_from_ratio(extent, hi);
        prop_assert!(t_lo >= 1 && t_lo <= extent.max(1));
        prop_assert!(t_lo <= t_hi);
        // Round trip within one step.
        let r = ratio_from_trips(extent, t_hi);
        let back = trips_from_ratio(extent, r);
        prop_assert!((back as i64 - t_hi as i64).abs() <= 1);
    }

    /// Tile geometry covers the layer: trips × spatial × pe-tile ≥ extent
    /// in every dimension.
    #[test]
    fn tiles_cover_extents(layer in arb_layer()) {
        for accel in baselines::all() {
            let m = Mapping::balanced(&layer, &accel);
            let conn = accel.connectivity();
            let pe = m.pe_tile(&layer, conn);
            for d in DIMS {
                let trips: u64 = m.levels().iter().map(|l| l.trips[d]).product();
                let spatial = conn.spatial_extent(d);
                prop_assert!(
                    trips * spatial * pe[d] >= layer.extent(d),
                    "{d} uncovered on {}: {} * {} * {} < {}",
                    accel.name(), trips, spatial, pe[d], layer.extent(d)
                );
            }
        }
    }

    /// The MAESTRO renderer always emits one cluster per array level and
    /// mentions every dimension.
    #[test]
    fn maestro_render_is_complete(layer in arb_layer()) {
        let accel = baselines::nvdla_256();
        let m = Mapping::balanced(&layer, &accel);
        let text = maestro::render(&layer, accel.connectivity(), &m);
        prop_assert_eq!(text.matches("Cluster(").count(), accel.connectivity().ndim());
        for d in DIMS {
            prop_assert!(text.contains(d.paper_name()));
        }
    }
}
